"""Merkle-tree memory integrity — where §5's future work historically led.

:class:`repro.core.integrity.IntegrityShieldEngine` stops replay by keeping
a per-line version counter **on chip**, which costs SRAM proportional to
the protected memory.  The scalable alternative (AEGIS's published design,
and everything since) is a hash tree: leaves authenticate lines, internal
nodes authenticate their children, and only the **root** lives on chip.
Replaying any stale (line, path) recording fails because the on-chip root
has moved on; tampering any stored node breaks its parent.

The engine composes with any confidentiality engine and adds:

* a binary hash tree over the protected region, nodes truncated to 16
  bytes, stored in a reserved external region (the tree is ~1 line-size of
  overhead per line at 32-byte lines);
* path verification on every fill: fetch the sibling path, hash upward,
  compare against the on-chip root — O(log n) fetches and hashes;
* path update on every writeback;
* an on-chip **node cache**: a verified node is trusted, so an upward walk
  can stop at the first cached hit — the classic optimization, exposed as
  an ablation (cache size 0 = full paths every time).
"""

from __future__ import annotations

import warnings
from collections import OrderedDict
from typing import List, Optional, Tuple

from ..crypto.hmac import hmac_sha256
from ..sim.area import AreaEstimate
from .engine import BusEncryptionEngine, MemoryPort, TamperDetected

__all__ = ["MerkleTreeEngine", "MerkleTamperDetected"]

_NODE_BYTES = 16


class MerkleTamperDetected(TamperDetected):
    """A fetched line's authentication path failed against the root."""


class MerkleTreeEngine(BusEncryptionEngine):
    """Hash-tree integrity over a fixed protected region."""

    name = "merkle-tree"
    #: Spoofed, relocated, flipped *and* replayed lines all fail the walk
    #: to the on-chip root — freshness comes for free from root state.
    detects = frozenset({"spoof", "splice", "replay", "glitch"})

    def __init__(
        self,
        inner: BusEncryptionEngine,
        mac_key: bytes,
        region_base: int,
        region_size: int,
        tree_base: int,
        line_size: int = 32,
        node_cache_size: int = 64,
        hash_latency: int = 64,
    ):
        super().__init__(functional=inner.functional)
        if region_size % line_size != 0:
            raise ValueError("region_size must be a multiple of line_size")
        n_lines = region_size // line_size
        if n_lines < 2 or n_lines & (n_lines - 1):
            raise ValueError(
                f"region must hold a power-of-two number of lines >= 2, "
                f"got {n_lines}"
            )
        self.inner = inner
        self.mac_key = mac_key
        self.region_base = region_base
        self.region_size = region_size
        self.tree_base = tree_base
        self.line_size = line_size
        self.n_lines = n_lines
        self.levels = n_lines.bit_length() - 1   # root excluded
        self.node_cache_size = node_cache_size
        self.hash_latency = hash_latency
        self.min_write_bytes = inner.min_write_bytes
        #: The single piece of on-chip integrity state.
        self.root: bytes = b""
        #: Trusted (verified or self-written) nodes: (level, index) -> value.
        self._node_cache: "OrderedDict[Tuple[int, int], bytes]" = OrderedDict()
        self.cache_stops = 0

    @property
    def tampers_detected(self) -> int:
        """Deprecated alias of ``self.verdicts.tampers``."""
        warnings.warn(
            "MerkleTreeEngine.tampers_detected is deprecated; read "
            "engine.verdicts.tampers instead",
            DeprecationWarning, stacklevel=2,
        )
        return self.verdicts.tampers

    @property
    def paths_verified(self) -> int:
        """Deprecated alias of ``self.verdicts.checks``."""
        warnings.warn(
            "MerkleTreeEngine.paths_verified is deprecated; read "
            "engine.verdicts.checks instead",
            DeprecationWarning, stacklevel=2,
        )
        return self.verdicts.checks

    # -- tree geometry -----------------------------------------------------
    #
    # Level 0 = leaves (one per line), level k has n_lines >> k nodes.
    # Node (k, i) is stored at tree_base + (level_offset(k) + i) * 16.

    def _level_offset(self, level: int) -> int:
        offset = 0
        for k in range(level):
            offset += self.n_lines >> k
        return offset

    def _node_addr(self, level: int, index: int) -> int:
        return self.tree_base + (self._level_offset(level) + index) * _NODE_BYTES

    def _leaf_value(self, addr: int, ciphertext: bytes) -> bytes:
        return hmac_sha256(
            self.mac_key, b"leaf" + addr.to_bytes(8, "big") + ciphertext
        )[:_NODE_BYTES]

    def _parent_value(self, left: bytes, right: bytes) -> bytes:
        return hmac_sha256(self.mac_key, b"node" + left + right)[:_NODE_BYTES]

    def _line_index(self, addr: int) -> int:
        index = (addr - self.region_base) // self.line_size
        if not 0 <= index < self.n_lines:
            raise ValueError(
                f"address {addr:#x} outside the protected region"
            )
        return index

    # -- node cache -----------------------------------------------------------

    def _cache_get(self, level: int, index: int) -> Optional[bytes]:
        key = (level, index)
        value = self._node_cache.get(key)
        if value is not None:
            self._node_cache.move_to_end(key)
        return value

    def _cache_put(self, level: int, index: int, value: bytes) -> None:
        if self.node_cache_size <= 0:
            return
        self._node_cache[(level, index)] = value
        while len(self._node_cache) > self.node_cache_size:
            self._node_cache.popitem(last=False)

    # -- installation -----------------------------------------------------------

    def install_image(self, memory, base_addr: int, plaintext: bytes,
                      line_size: int = 32) -> None:
        if base_addr != self.region_base or line_size != self.line_size:
            raise ValueError(
                "image must exactly cover the engine's protected region"
            )
        if len(plaintext) != self.region_size:
            plaintext = plaintext.ljust(self.region_size, b"\x00")

        items = [
            (base_addr + i * line_size,
             plaintext[i * line_size: (i + 1) * line_size])
            for i in range(self.n_lines)
        ]
        level_values: List[bytes] = []
        for (addr, _), ciphertext in zip(items,
                                         self.inner.encrypt_lines(items)):
            memory.load_image(addr, ciphertext)
            level_values.append(self._leaf_value(addr, ciphertext))

        level = 0
        while len(level_values) > 1:
            for i, value in enumerate(level_values):
                memory.load_image(self._node_addr(level, i), value)
            level_values = [
                self._parent_value(level_values[2 * i], level_values[2 * i + 1])
                for i in range(len(level_values) // 2)
            ]
            level += 1
        # Only the root lives on chip.
        self.root = level_values[0]

    # -- verification walk ----------------------------------------------------------

    def _fetch_node(self, port: MemoryPort, level: int, index: int
                    ) -> Tuple[bytes, int]:
        value, cycles = port.read(self._node_addr(level, index), _NODE_BYTES)
        return value, cycles

    def _verify_path(self, port: MemoryPort, addr: int, ciphertext: bytes
                     ) -> int:
        """Authenticate one line against the root; returns cycles.

        Raises :class:`MerkleTamperDetected` on any mismatch; the caller
        (:meth:`fill_line`) routes the outcome through the uniform
        verdict path.
        """
        cycles = 0
        leaf_index = self._line_index(addr)
        leaf = self._leaf_value(addr, ciphertext)
        cycles += self.hash_latency

        # A trusted copy of this leaf ends the walk immediately.
        cached = self._cache_get(0, leaf_index)
        if cached is not None:
            self.cache_stops += 1
            if self.functional and cached != leaf:
                raise MerkleTamperDetected(
                    f"line at {addr:#x} disagrees with its trusted leaf"
                )
            return cycles

        current, index = leaf, leaf_index
        for level in range(self.levels):
            sibling_index = index ^ 1
            sibling = self._cache_get(level, sibling_index)
            if sibling is None:
                sibling, fetch_cycles = self._fetch_node(
                    port, level, sibling_index
                )
                cycles += fetch_cycles
            left, right = (current, sibling) if index % 2 == 0 \
                else (sibling, current)
            parent = self._parent_value(left, right)
            cycles += self.hash_latency
            parent_index = index // 2
            trusted_parent = self._cache_get(level + 1, parent_index)
            if trusted_parent is not None:
                self.cache_stops += 1
                if self.functional and trusted_parent != parent:
                    raise MerkleTamperDetected(
                        f"path for {addr:#x} breaks at level {level + 1}"
                    )
                self._cache_put(0, leaf_index, leaf)
                return cycles
            current, index = parent, parent_index

        if self.functional and current != self.root:
            raise MerkleTamperDetected(
                f"path for {addr:#x} does not reach the on-chip root"
            )
        # Cache the now-trusted leaf (the root is implicitly trusted).
        self._cache_put(0, leaf_index, leaf)
        return cycles

    def _update_path(self, port: MemoryPort, addr: int, ciphertext: bytes
                     ) -> int:
        """Recompute the path after a write; returns cycles."""
        cycles = 0
        index = self._line_index(addr)
        current = self._leaf_value(addr, ciphertext)
        cycles += self.hash_latency
        self._cache_put(0, index, current)
        cycles += port.write(self._node_addr(0, index), current)

        for level in range(self.levels):
            sibling_index = index ^ 1
            sibling = self._cache_get(level, sibling_index)
            if sibling is None:
                sibling, fetch_cycles = self._fetch_node(
                    port, level, sibling_index
                )
                cycles += fetch_cycles
            left, right = (current, sibling) if index % 2 == 0 \
                else (sibling, current)
            current = self._parent_value(left, right)
            cycles += self.hash_latency
            index //= 2
            if level + 1 <= self.levels - 1:
                cycles += port.write(
                    self._node_addr(level + 1, index), current
                )
                self._cache_put(level + 1, index, current)
        self.root = current
        return cycles

    # -- BusEncryptionEngine interface ----------------------------------------------

    def encrypt_line(self, addr: int, plaintext: bytes) -> bytes:
        return self.inner.encrypt_line(addr, plaintext)

    def decrypt_line(self, addr: int, ciphertext: bytes) -> bytes:
        return self.inner.decrypt_line(addr, ciphertext)

    def read_extra_cycles(self, addr: int, nbytes: int, mem_cycles: int) -> int:
        return self.inner.read_extra_cycles(addr, nbytes, mem_cycles)

    def write_extra_cycles(self, addr: int, nbytes: int) -> int:
        return self.inner.write_extra_cycles(addr, nbytes)

    def fill_line(self, port: MemoryPort, addr: int, line_size: int
                  ) -> Tuple[bytes, int]:
        ciphertext, mem_cycles = port.read(addr, line_size)
        cycles = mem_cycles
        try:
            cycles += self._verify_path(port, addr, bytes(ciphertext))
        except MerkleTamperDetected:
            self.verify_line(addr, line_size, ok=False)
            raise
        self.verify_line(addr, line_size, ok=True)
        extra = self.inner.read_extra_cycles(addr, line_size, mem_cycles)
        cycles += extra
        self.stats.lines_decrypted += 1
        self.stats.extra_read_cycles += cycles - mem_cycles
        self._emit("decipher", addr, line_size)
        if cycles - mem_cycles:
            self._emit("stall", addr, cycles - mem_cycles, "read")
        plaintext = (
            self.inner.decrypt_line(addr, ciphertext)
            if self.functional else ciphertext
        )
        return plaintext, cycles

    def write_line(self, port: MemoryPort, addr: int, plaintext: bytes) -> int:
        extra = self.inner.write_extra_cycles(addr, len(plaintext))
        ciphertext = (
            self.inner.encrypt_line(addr, plaintext)
            if self.functional else bytes(plaintext)
        )
        cycles = extra + port.write(addr, ciphertext)
        cycles += self._update_path(port, addr, ciphertext)
        self.stats.lines_encrypted += 1
        self.stats.extra_write_cycles += extra
        self._emit("encipher", addr, len(plaintext))
        if extra:
            self._emit("stall", addr, extra, "write")
        return cycles

    def write_partial(self, port: MemoryPort, addr: int, data: bytes,
                      line_size: int) -> int:
        start = addr - addr % line_size
        self.stats.rmw_operations += 1
        self._emit("rmw", addr, line_size)
        plaintext, read_cycles = self.fill_line(port, start, line_size)
        patched = bytearray(plaintext)
        patched[addr - start: addr - start + len(data)] = data
        return read_cycles + self.write_line(port, start, bytes(patched))

    def area(self) -> AreaEstimate:
        est = AreaEstimate(self.name)
        inner = self.inner.area()
        for label, gates in inner.items.items():
            est.add(f"inner/{label}", gates)
        est.add_block("hmac_sha256")
        est.add_sram("root-register", _NODE_BYTES)
        est.add_sram("node-cache", self.node_cache_size * _NODE_BYTES)
        est.add_block("control_overhead")
        return est

    def tree_overhead_bytes(self) -> int:
        """External memory consumed by the stored tree nodes."""
        return self._level_offset(self.levels) * _NODE_BYTES
