"""Gilmont et al.'s fetch-prediction + pipelined triple-DES engine ([3]).

"Guilmont et al. use a fetch prediction unit and pipelined triple-DES block
cipher.  They assume to keep the deciphering cost under 2,5% in term of
performance cost.  However, this work only addresses static code ciphering."

The engine pre-deciphers the next sequential line(s) whenever a line is
fetched; a subsequent miss that hits the prediction window pays no cipher
latency at all — the 3DES drain has already happened in the shadow of the
CPU consuming the previous line.  Taken branches fall outside the window and
pay the full pipelined-3DES drain.  E09 sweeps branchiness to show the
<2.5% claim holding exactly where the paper scopes it (sequential, static
code) and collapsing outside it.

Data writes are the paper's acknowledged blind spot ("authors are not
confronted to smaller-than-block-size memory operations"); the engine
handles them with the generic read-modify-write path, whose cost E09 also
reports.
"""

from __future__ import annotations

from typing import Set

from ..crypto.kernels import tdes_kernel
from ..crypto.modes import xor_bytes
from ..sim.area import AreaEstimate
from ..sim.pipeline import TDES_PIPE, PipelinedUnit
from .engine import BlockModeEngine

__all__ = ["GilmontEngine"]


class GilmontEngine(BlockModeEngine):
    """Pipelined 3DES with an N-deep sequential fetch predictor."""

    name = "gilmont-3des"
    #: Confidentiality only: the fetch predictor speeds fills, it does not
    #: authenticate them.
    detects = frozenset()

    def __init__(
        self,
        key: bytes,
        prediction_depth: int = 2,
        line_size: int = 32,
        unit: PipelinedUnit = TDES_PIPE,
        functional: bool = True,
        **kwargs,
    ):
        if prediction_depth < 0:
            raise ValueError(f"prediction_depth must be >= 0, got {prediction_depth}")
        super().__init__(unit=unit, cipher_block=8, functional=functional,
                         **kwargs)
        self._tdes = tdes_kernel(key)
        self.prediction_depth = prediction_depth
        self.line_size = line_size
        self._predicted: Set[int] = set()
        self._max_window = 4 * max(1, prediction_depth)

    # -- functional transform (address-tweaked 3DES-ECB) --------------------

    def _tweak(self, addr: int) -> bytes:
        return addr.to_bytes(8, "big")

    def _tweaks(self, addr: int, nbytes: int) -> bytes:
        return b"".join(
            self._tweak(addr + i) for i in range(0, nbytes, 8)
        )

    def encrypt_line(self, addr: int, plaintext: bytes) -> bytes:
        tweaked = xor_bytes(plaintext, self._tweaks(addr, len(plaintext)))
        return self._tdes.encrypt_blocks(tweaked)

    def decrypt_line(self, addr: int, ciphertext: bytes) -> bytes:
        decrypted = self._tdes.decrypt_blocks(ciphertext)
        return xor_bytes(decrypted, self._tweaks(addr, len(ciphertext)))

    # -- prediction-aware timing ----------------------------------------------

    def read_extra_cycles(self, addr: int, nbytes: int, mem_cycles: int) -> int:
        predicted = addr in self._predicted
        if predicted:
            self.stats.prefetch_hits += 1
            self._predicted.discard(addr)
            extra = 0
            nblocks = self._nblocks(nbytes)
            self.stats.blocks_processed += nblocks
        else:
            self.stats.prefetch_misses += 1
            extra = super().read_extra_cycles(addr, nbytes, mem_cycles)
        # Predict the next sequential lines; the unit deciphers them in the
        # background while the CPU consumes this line.
        for i in range(1, self.prediction_depth + 1):
            self._predicted.add(addr + i * nbytes)
        if len(self._predicted) > self._max_window:
            # The window is a small hardware buffer; oldest entries fall out.
            excess = len(self._predicted) - self._max_window
            for stale in sorted(self._predicted)[:excess]:
                self._predicted.discard(stale)
        return extra

    def area(self) -> AreaEstimate:
        est = AreaEstimate(self.name)
        est.add_block("tdes_pipelined")
        est.add_block("fetch_predictor")
        est.add_sram(
            "prediction-buffer",
            self._max_window * self.line_size,
        )
        est.add_block("control_overhead")
        return est
