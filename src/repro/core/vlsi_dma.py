"""VLSI Technology's secure-DMA page engine (survey Figure 4, patent [10]).

"VLSI technology proposes an architecture where data transfers to and from
the external memory are done page-by-page.  All CPU external requests are
managed by a secure DMA unit and communications between external and
internal memory use an encryption / decryption core.  This system allows the
use of block cipher techniques (robustness).  As the DMA is controlled by
the operating system, this technique is viable provided that the OS is
trusted."

The engine owns an on-chip page buffer.  A miss to a *resident* page is an
internal SRAM access: no external traffic and near-zero latency.  A miss to
a non-resident page triggers a page fault: the LRU victim page is
re-enciphered and written out if dirty, and the whole requested page is
fetched and deciphered (3DES-CBC per page — chaining is harmless because
the transfer is bulk and sequential by construction).  E07 sweeps page size
and locality: small pages waste the amortization, large pages thrash under
poor locality — the patent's trade.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Tuple

from ..crypto.kernels import tdes_kernel
from ..crypto.modes import CBC
from ..sim.area import AreaEstimate
from ..sim.pipeline import PipelinedUnit, TDES_PIPE
from .engine import BusEncryptionEngine, MemoryPort

__all__ = ["VlsiDmaEngine"]


class _Page:
    __slots__ = ("data", "dirty")

    def __init__(self, data: bytearray):
        self.data = data
        self.dirty = False


class VlsiDmaEngine(BusEncryptionEngine):
    """Page-granular secure DMA with an on-chip page buffer."""

    name = "vlsi-secure-dma"
    #: Confidentiality only: 3DES-CBC pages garble under tampering (CBC
    #: error propagation) but carry no authentication.
    detects = frozenset()

    def __init__(
        self,
        key: bytes,
        page_size: int = 1024,
        buffer_pages: int = 8,
        sram_latency: int = 2,
        unit: PipelinedUnit = TDES_PIPE,
        functional: bool = True,
    ):
        if page_size % 8 != 0 or page_size <= 0:
            raise ValueError(
                f"page_size must be a positive multiple of 8, got {page_size}"
            )
        if buffer_pages < 1:
            raise ValueError(f"buffer_pages must be >= 1, got {buffer_pages}")
        super().__init__(functional=functional)
        self._tdes = tdes_kernel(key)
        self.page_size = page_size
        self.buffer_pages = buffer_pages
        self.sram_latency = sram_latency
        self.unit = unit
        self.min_write_bytes = 1  # absorbed by the page buffer
        self._buffer: "OrderedDict[int, _Page]" = OrderedDict()
        self.page_faults = 0
        self.page_writebacks = 0

    # -- page crypto ---------------------------------------------------------

    def _page_iv(self, base: int) -> bytes:
        return self._tdes.encrypt_block(base.to_bytes(8, "big"))

    def _encrypt_page(self, base: int, plaintext: bytes) -> bytes:
        return CBC(self._tdes, self._page_iv(base)).encrypt(plaintext)

    def _decrypt_page(self, base: int, ciphertext: bytes) -> bytes:
        return CBC(self._tdes, self._page_iv(base)).decrypt(ciphertext)

    def _page_base(self, addr: int) -> int:
        return addr - addr % self.page_size

    # -- generic engine interface (used for install / verification) ----------

    def encrypt_line(self, addr: int, plaintext: bytes) -> bytes:
        raise NotImplementedError("page-granular engine: use install_image")

    def decrypt_line(self, addr: int, ciphertext: bytes) -> bytes:
        raise NotImplementedError("page-granular engine: use read_plain")

    def read_extra_cycles(self, addr: int, nbytes: int, mem_cycles: int) -> int:
        raise NotImplementedError

    def write_extra_cycles(self, addr: int, nbytes: int) -> int:
        raise NotImplementedError

    def install_image(self, memory, base_addr: int, plaintext: bytes,
                      line_size: int = 32) -> None:
        if base_addr % self.page_size != 0:
            raise ValueError(
                f"image base {base_addr:#x} must align to the page size"
            )
        if len(plaintext) % self.page_size != 0:
            plaintext = plaintext + b"\x00" * (
                self.page_size - len(plaintext) % self.page_size
            )
        for offset in range(0, len(plaintext), self.page_size):
            base = base_addr + offset
            page = plaintext[offset: offset + self.page_size]
            memory.load_image(base, self._encrypt_page(base, page))

    def read_plain(self, memory, addr: int, nbytes: int) -> bytes:
        """Decrypt installed bytes straight from memory (verification)."""
        first = self._page_base(addr)
        last = self._page_base(addr + nbytes - 1)
        out = bytearray()
        for base in range(first, last + self.page_size, self.page_size):
            out += self._decrypt_page(base, memory.dump(base, self.page_size))
        offset = addr - first
        return bytes(out[offset: offset + nbytes])

    # -- page-fault machinery ----------------------------------------------

    def _evict_lru(self, port: MemoryPort) -> int:
        base, page = self._buffer.popitem(last=False)
        if not page.dirty:
            return 0
        self.page_writebacks += 1
        nblocks = self.page_size // 8
        # Serial CBC encryption of the page, then the bulk DMA write.
        enc_cycles = nblocks * self.unit.latency if self.unit.initiation_interval > 1 \
            else self.unit.time_for(nblocks)
        ciphertext = (
            self._encrypt_page(base, bytes(page.data))
            if self.functional else bytes(page.data)
        )
        self.stats.lines_encrypted += 1
        self.stats.blocks_processed += nblocks
        self.stats.extra_write_cycles += enc_cycles
        self._emit("encipher", base, self.page_size, "page")
        if enc_cycles:
            self._emit("stall", base, enc_cycles, "write")
        return enc_cycles + port.write(base, ciphertext)

    def _fault_in(self, port: MemoryPort, base: int) -> int:
        """Fetch and decipher a whole page; returns cycles."""
        self.page_faults += 1
        cycles = 0
        if len(self._buffer) >= self.buffer_pages:
            cycles += self._evict_lru(port)
        ciphertext, mem_cycles = port.read(base, self.page_size)
        nblocks = self.page_size // 8
        extra = self.unit.drain_after_arrivals(nblocks, 1)
        self.stats.lines_decrypted += 1
        self.stats.blocks_processed += nblocks
        self.stats.extra_read_cycles += extra
        self._emit("decipher", base, self.page_size, "page")
        if extra:
            self._emit("stall", base, extra, "read")
        cycles += mem_cycles + extra
        data = (
            bytearray(self._decrypt_page(base, ciphertext))
            if self.functional else bytearray(ciphertext)
        )
        self._buffer[base] = _Page(data)
        return cycles

    def _resident(self, port: MemoryPort, addr: int) -> Tuple[_Page, int, int]:
        """Return (page, offset, cycles), faulting the page in if needed."""
        base = self._page_base(addr)
        cycles = 0
        if base in self._buffer:
            self._buffer.move_to_end(base)
        else:
            cycles += self._fault_in(port, base)
        return self._buffer[base], addr - base, cycles

    # -- system entry points -------------------------------------------------

    def fill_line(self, port: MemoryPort, addr: int, line_size: int
                  ) -> Tuple[bytes, int]:
        page, offset, cycles = self._resident(port, addr)
        cycles += self.sram_latency
        return bytes(page.data[offset: offset + line_size]), cycles

    def write_line(self, port: MemoryPort, addr: int, plaintext: bytes) -> int:
        page, offset, cycles = self._resident(port, addr)
        page.data[offset: offset + len(plaintext)] = plaintext
        page.dirty = True
        return cycles + self.sram_latency

    def write_partial(self, port: MemoryPort, addr: int, data: bytes,
                      line_size: int) -> int:
        # The page buffer absorbs any granularity: no read-modify-write.
        return self.write_line(port, addr, data)

    def flush(self, port: MemoryPort) -> int:
        """Write back every dirty page (end-of-run barrier); returns cycles."""
        cycles = 0
        while self._buffer:
            cycles += self._evict_lru(port)
        return cycles

    def area(self) -> AreaEstimate:
        est = AreaEstimate(self.name)
        est.add_block("tdes_pipelined")
        est.add_block("dma_controller")
        est.add_sram("page-buffer", self.buffer_pages * self.page_size)
        est.add_block("control_overhead")
        return est
