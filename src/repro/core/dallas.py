"""Dallas Semiconductor bus-encryption microcontrollers (survey Figure 6).

Two generations, two security levels:

* :class:`DS5002FPEngine` — the old part: "ciphering by block of 8-bit
  instructions", i.e. each external byte is enciphered independently with an
  address-dependent transformation.  Fast (one table lookup per byte, no
  read-modify-write) but broken: an 8-bit block admits only 256 ciphertext
  values per address, which Markus Kuhn's Cipher Instruction Search attack
  enumerates (:mod:`repro.attacks.kuhn`, experiment E05).

* :class:`DS5240Engine` — the successor: "implements a ciphering based on a
  true DES or 3-DES block cipher ... the 8-bit based ciphering passes to
  64-bit based ciphering", which inflates the per-address search space from
  2^8 to 2^64 and adds block-granularity write penalties.
"""

from __future__ import annotations

from ..crypto.feistel import SmallBlockCipher
from ..crypto.kernels import des_kernel, tdes_kernel
from ..crypto.modes import xor_bytes
from ..sim.area import AreaEstimate
from ..sim.pipeline import BYTE_SUBST_UNIT, DES_ITERATIVE, PipelinedUnit
from .engine import BlockModeEngine, BusEncryptionEngine

__all__ = ["DS5002FPEngine", "DS5240Engine"]


class DS5002FPEngine(BusEncryptionEngine):
    """Byte-granular address-dependent encryption (the broken generation)."""

    name = "ds5002fp"
    min_write_bytes = 1
    #: Confidentiality only — no verdict path (Kuhn's attack relies on
    #: exactly this: injected ciphertext always executes).
    detects = frozenset()

    def __init__(self, key: bytes, functional: bool = True):
        super().__init__(functional=functional)
        self.cipher = SmallBlockCipher(key)
        self.unit = BYTE_SUBST_UNIT

    def encrypt_line(self, addr: int, plaintext: bytes) -> bytes:
        return self.cipher.encrypt(addr, plaintext)

    def decrypt_line(self, addr: int, ciphertext: bytes) -> bytes:
        return self.cipher.decrypt(addr, ciphertext)

    def read_extra_cycles(self, addr: int, nbytes: int, mem_cycles: int) -> int:
        # Byte substitution keeps pace with the bus; only the tiny unit
        # latency lands on the critical path.
        self.stats.blocks_processed += nbytes
        return self.unit.latency

    def write_extra_cycles(self, addr: int, nbytes: int) -> int:
        self.stats.blocks_processed += nbytes
        return self.unit.latency

    def area(self) -> AreaEstimate:
        est = AreaEstimate(self.name)
        est.add_block("byte_sbox", 2)        # encrypt + decrypt paths
        est.add_block("control_overhead")
        return est


class DS5240Engine(BlockModeEngine):
    """64-bit DES (or 3DES) block encryption (the strengthened generation)."""

    name = "ds5240"
    #: Confidentiality only: wider blocks raise the injection cost but
    #: nothing rejects a forged block.
    detects = frozenset()

    def __init__(
        self,
        key: bytes,
        triple: bool = False,
        unit: PipelinedUnit = DES_ITERATIVE,
        functional: bool = True,
        **kwargs,
    ):
        super().__init__(unit=unit, cipher_block=8, functional=functional,
                         **kwargs)
        self.triple = triple
        self._cipher = tdes_kernel(key) if triple else des_kernel(key[:8])

    def _tweak(self, addr: int) -> bytes:
        return addr.to_bytes(8, "big")

    def _tweaks(self, addr: int, nbytes: int) -> bytes:
        return b"".join(
            self._tweak(addr + i) for i in range(0, nbytes, 8)
        )

    def encrypt_line(self, addr: int, plaintext: bytes) -> bytes:
        tweaked = xor_bytes(plaintext, self._tweaks(addr, len(plaintext)))
        return self._cipher.encrypt_blocks(tweaked)

    def decrypt_line(self, addr: int, ciphertext: bytes) -> bytes:
        decrypted = self._cipher.decrypt_blocks(ciphertext)
        return xor_bytes(decrypted, self._tweaks(addr, len(ciphertext)))

    def encrypt_lines(self, items):
        # Tweaked ECB: every line of the install batch goes through one
        # kernel call.
        if not items or any(len(line) % 8 for _, line in items):
            return super().encrypt_lines(items)
        tweaks = b"".join(
            self._tweaks(addr, len(line)) for addr, line in items
        )
        plain = b"".join(line for _, line in items)
        ct = self._cipher.encrypt_blocks(xor_bytes(plain, tweaks))
        out = []
        pos = 0
        for _, line in items:
            out.append(ct[pos: pos + len(line)])
            pos += len(line)
        return out

    def area(self) -> AreaEstimate:
        est = AreaEstimate(self.name)
        est.add_block("tdes_iterative" if self.triple else "des_iterative")
        est.add_block("control_overhead")
        return est
