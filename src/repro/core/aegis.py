"""AEGIS-style per-cache-line AES-CBC engine ([14] in the survey).

AEGIS encrypts external memory with a pipelined AES (≈300,000 gates) in CBC
mode, but "the ciphering block chain corresponds to a cache block, thus
allowing random access to external memory (each cache block may be ciphered
in CBC mode separately)".  The initialization vector "is composed by the
block address and by a random vector; to thwart the birthday attack it is
possible to replace the random vector by a counter".

This engine reproduces all of that:

* CBC chained only within one cache line — any line is independently
  decryptable (random access preserved, unlike the General Instrument
  whole-region chain);
* IV = AES_K(address || vector), with ``iv_mode`` selecting a *random*
  vector (fresh randomness per write — collides at the birthday bound for
  narrow vectors, measured in E11) or a *counter* vector (collision free
  until wraparound);
* the fetched word "cannot be provided to the processor until an entire
  cache block is deciphered" — modeled as the CBC drain over the whole line
  plus one pipeline pass for the IV generation;
* the survey's ≈25% performance overhead emerges at the system level (E11).

The per-line vectors are metadata the real design stores/caches on chip;
here they live in an on-chip table whose SRAM cost appears in the area
estimate.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..crypto.drbg import DRBG
from ..crypto.kernels import aes_kernel
from ..crypto.modes import CBC, xor_bytes
from ..sim.area import AreaEstimate
from ..sim.pipeline import AEGIS_AES_PIPE, PipelinedUnit
from .engine import BlockModeEngine, MemoryPort

__all__ = ["AegisEngine"]


class AegisEngine(BlockModeEngine):
    """Per-cache-line AES-CBC with address+vector IVs."""

    name = "aegis-aes-cbc"
    #: Confidentiality layer only; AEGIS's integrity story is the hash
    #: tree modelled separately (see "merkle-stream").
    detects = frozenset()

    def __init__(
        self,
        key: bytes,
        iv_mode: str = "counter",
        vector_bits: int = 32,
        rng: DRBG = None,
        unit: PipelinedUnit = AEGIS_AES_PIPE,
        functional: bool = True,
        tracked_lines: int = 4096,
        **kwargs,
    ):
        if iv_mode not in ("counter", "random"):
            raise ValueError(f"iv_mode must be 'counter' or 'random', got {iv_mode!r}")
        if not 1 <= vector_bits <= 64:
            raise ValueError(f"vector_bits must be in [1, 64], got {vector_bits}")
        super().__init__(unit=unit, cipher_block=16, functional=functional,
                         **kwargs)
        self._aes = aes_kernel(key)
        self._iv_aes = aes_kernel(bytes(b ^ 0x36 for b in key))
        self.iv_mode = iv_mode
        self.vector_bits = vector_bits
        self._rng = rng if rng is not None else DRBG(b"aegis-iv")
        self._vectors: Dict[int, int] = {}
        self._counter = 0
        self.tracked_lines = tracked_lines
        #: History of vectors issued, for the birthday-collision analysis.
        self.issued_vectors: list = []

    # -- IV management -----------------------------------------------------

    def _next_vector(self) -> int:
        if self.iv_mode == "counter":
            self._counter = (self._counter + 1) % (1 << self.vector_bits)
            vector = self._counter
        else:
            vector = self._rng.randbits(self.vector_bits)
        self.issued_vectors.append(vector)
        return vector

    def _iv(self, addr: int) -> bytes:
        vector = self._vectors.get(addr, 0)
        material = addr.to_bytes(8, "big") + vector.to_bytes(8, "big")
        return self._iv_aes.encrypt_block(material)

    # -- functional transform ------------------------------------------------

    def encrypt_line(self, addr: int, plaintext: bytes) -> bytes:
        # A (re)encryption means the line is being written: fresh vector.
        self._vectors[addr] = self._next_vector()
        return CBC(self._aes, self._iv(addr)).encrypt(plaintext)

    def decrypt_line(self, addr: int, ciphertext: bytes) -> bytes:
        return CBC(self._aes, self._iv(addr)).decrypt(ciphertext)

    def encrypt_lines(self, items):
        # Install batch: lines are independent CBC chains, so encrypt
        # them transposed — all IVs in one kernel call, then one ECB
        # batch per block column, chaining column to column.  Vector
        # issue order matches the per-line loop exactly.
        widths = {len(line) for _, line in items}
        if not items or len(widths) != 1 or next(iter(widths)) % 16:
            return super().encrypt_lines(items)
        blocks_per_line = next(iter(widths)) // 16
        material = []
        for addr, _ in items:
            vector = self._next_vector()
            self._vectors[addr] = vector
            material.append(
                addr.to_bytes(8, "big") + vector.to_bytes(8, "big")
            )
        prev = self._iv_aes.encrypt_blocks(b"".join(material))
        cols = []
        for b in range(blocks_per_line):
            col = b"".join(
                line[b * 16: (b + 1) * 16] for _, line in items
            )
            prev = self._aes.encrypt_blocks(xor_bytes(col, prev))
            cols.append(prev)
        return [
            b"".join(col[i * 16: (i + 1) * 16] for col in cols)
            for i in range(len(items))
        ]

    # -- timing ---------------------------------------------------------------

    def read_extra_cycles(self, addr: int, nbytes: int, mem_cycles: int) -> int:
        # One pipeline pass to produce the IV, then the CBC decryption drain
        # (block i needs only ciphertext, so blocks pipeline behind the bus
        # beats); the processor waits for the whole line regardless.
        base = super().read_extra_cycles(addr, nbytes, mem_cycles)
        return self.unit.latency + base

    def write_extra_cycles(self, addr: int, nbytes: int) -> int:
        # IV generation, then a *serial* CBC encryption chain: block i cannot
        # be issued before block i-1's ciphertext exists.
        nblocks = self._nblocks(nbytes)
        self.stats.blocks_processed += nblocks
        return self.unit.latency + nblocks * self.unit.latency

    def fill_lines(self, port: MemoryPort, addrs: Sequence[int],
                   line_size: int) -> List[Tuple[bytes, int]]:
        # The CBC chain is per line and decryption has no chain
        # dependency, so the group needs one batched IV derivation and
        # one batched block decryption; the per-line XOR with
        # ``iv || ct[:-16]`` reproduces CBC.decrypt exactly.  Fills never
        # re-encrypt, so the vector table is stable across the group.
        if self.functional and line_size % 16:
            return super().fill_lines(port, addrs, line_size)
        ciphertexts: List[bytes] = []
        cycles: List[int] = []
        for addr in addrs:
            ciphertext, mem_cycles = port.read(addr, line_size)
            extra = self.read_extra_cycles(addr, line_size, mem_cycles)
            self.stats.lines_decrypted += 1
            self.stats.extra_read_cycles += extra
            if self.sink is not None:
                self._emit("decipher", addr, line_size)
                if extra:
                    self._emit("stall", addr, extra, "read")
            ciphertexts.append(ciphertext)
            cycles.append(mem_cycles + extra)
        if not self.functional:
            return list(zip(ciphertexts, cycles))
        material = b"".join(
            addr.to_bytes(8, "big")
            + self._vectors.get(addr, 0).to_bytes(8, "big")
            for addr in addrs
        )
        ivs = self._iv_aes.encrypt_blocks(material)
        decrypted = self._aes.decrypt_blocks(b"".join(ciphertexts))
        out: List[Tuple[bytes, int]] = []
        for i, ciphertext in enumerate(ciphertexts):
            chain = ivs[16 * i: 16 * (i + 1)] + ciphertext[:-16]
            block = decrypted[i * line_size: (i + 1) * line_size]
            out.append((xor_bytes(block, chain), cycles[i]))
        return out

    def area(self) -> AreaEstimate:
        est = AreaEstimate(self.name)
        est.add_block("aes_pipelined")
        est.add_block("counter_64")
        est.add_block("control_overhead")
        est.add_sram(
            "iv-vector-table",
            self.tracked_lines * (self.vector_bits // 8 or 1),
        )
        return est
