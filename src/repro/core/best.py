"""Best's crypto-microprocessor engine (survey Figure 3, patents [7][8][9]).

"Best proposed to consider the CPU as secure and consequently all data and
addresses are in decrypted form inside the CPU and encrypted outside the
SOC. ... The block cipher chosen is based on basic cryptographic functions
such as mono and poly-alphabetic substitutions and byte transpositions."

The engine wraps :class:`repro.crypto.BestCipher`: address-selected
substitution alphabets plus a keyed transposition, one combinational pass —
essentially free in latency and tiny in area.  The price is cryptographic:
shallow diffusion leaves statistical structure in the ciphertext, which
E06 measures against AES with the entropy/collision distinguishers.
"""

from __future__ import annotations

from ..crypto.best_cipher import BestCipher
from ..sim.area import AreaEstimate
from ..sim.pipeline import BYTE_SUBST_UNIT
from .engine import BusEncryptionEngine

__all__ = ["BestEngine"]


class BestEngine(BusEncryptionEngine):
    """Substitution/transposition engine at 8-byte granularity."""

    name = "best-1979"
    #: Confidentiality only: a tampered line decrypts to garbage but is
    #: still handed to the CPU (§2.3's modification attacks succeed).
    detects = frozenset()

    def __init__(
        self,
        key: bytes,
        block_size: int = 8,
        num_alphabets: int = 16,
        rounds: int = 2,
        functional: bool = True,
    ):
        super().__init__(functional=functional)
        self.cipher = BestCipher(
            key, block_size=block_size, num_alphabets=num_alphabets,
            rounds=rounds,
        )
        self.block_size = block_size
        self.min_write_bytes = block_size
        self.unit = BYTE_SUBST_UNIT
        self.rounds = rounds

    def encrypt_line(self, addr: int, plaintext: bytes) -> bytes:
        out = bytearray()
        for i in range(0, len(plaintext), self.block_size):
            out += self.cipher.encrypt(addr + i, plaintext[i: i + self.block_size])
        return bytes(out)

    def decrypt_line(self, addr: int, ciphertext: bytes) -> bytes:
        out = bytearray()
        for i in range(0, len(ciphertext), self.block_size):
            out += self.cipher.decrypt(addr + i, ciphertext[i: i + self.block_size])
        return bytes(out)

    def read_extra_cycles(self, addr: int, nbytes: int, mem_cycles: int) -> int:
        self.stats.blocks_processed += -(-nbytes // self.block_size)
        # One combinational pass per round.
        return self.rounds * self.unit.latency

    def write_extra_cycles(self, addr: int, nbytes: int) -> int:
        self.stats.blocks_processed += -(-nbytes // self.block_size)
        return self.rounds * self.unit.latency

    def area(self) -> AreaEstimate:
        est = AreaEstimate(self.name)
        est.add_block("byte_sbox", self.cipher.num_alphabets)
        est.add_block("byte_transposition", 2)
        est.add_block("control_overhead")
        return est
