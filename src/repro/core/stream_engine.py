"""Stream-cipher (pad-ahead) bus encryption engine (survey Figure 2a).

"In our context, stream cipher seems to be more suitable in term of
performance: the key stream generation can be parallelised with external
data fetch.  The shortcoming of block cipher cryptosystems is that
deciphering cannot start until a complete block has been received."

The engine realizes that observation with AES in counter mode as the
keystream generator (seekable by line address and version, so pads can be
produced *before* the data arrives):

* On a fill, the pad for the line is either already in the on-chip pad
  cache (hit: one XOR cycle on the critical path) or generated concurrently
  with the memory fetch (cost only the amount by which pad generation
  exceeds the fetch, usually zero — the survey's parallelism argument).
* After each fill the engine precomputes pads for the next
  ``pad_ahead_depth`` sequential lines.
* Writes need a *fresh* pad (never reuse keystream): each line carries a
  version counter mixed into the CTR tweak.  ``reuse_pad_on_partial_write``
  (default off) models the tempting-but-broken shortcut of patching bytes
  under the old pad; :mod:`repro.analysis.security` demonstrates the
  two-time-pad leak it causes, and tests pin it.

E02 sweeps memory latency to place the stream-vs-block crossover; E12 reuses
the pad machinery for the CPU-cache placement study.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Sequence, Tuple

from ..crypto.kernels import aes_kernel, ctr_pad
from ..crypto.modes import xor_bytes
from ..sim.area import AreaEstimate
from ..sim.pipeline import PipelinedUnit, XOM_AES_PIPE
from .engine import BusEncryptionEngine, MemoryPort

__all__ = ["StreamCipherEngine"]


class StreamCipherEngine(BusEncryptionEngine):
    """Seekable-keystream engine with an on-chip pad cache."""

    name = "stream-ctr"
    min_write_bytes = 1
    #: Confidentiality only — worse, XOR pads make undetected bit-flips
    #: *surgical*: flipping ciphertext bit i flips plaintext bit i.
    detects = frozenset()

    def __init__(
        self,
        key: bytes,
        line_size: int = 32,
        pad_cache_lines: int = 16,
        pad_ahead_depth: int = 2,
        unit: PipelinedUnit = XOM_AES_PIPE,
        reuse_pad_on_partial_write: bool = False,
        functional: bool = True,
    ):
        super().__init__(functional=functional)
        if pad_cache_lines < 1:
            raise ValueError(f"pad_cache_lines must be >= 1, got {pad_cache_lines}")
        self._aes = aes_kernel(key)
        self.line_size = line_size
        self.unit = unit
        self.pad_cache_lines = pad_cache_lines
        self.pad_ahead_depth = pad_ahead_depth
        self.reuse_pad_on_partial_write = reuse_pad_on_partial_write
        # Pad cache: line address -> precomputed pad bytes (LRU).
        self._pad_cache: "OrderedDict[int, bytes]" = OrderedDict()
        # Per-line write version, mixed into the keystream tweak.
        self._versions: Dict[int, int] = {}

    # -- keystream -----------------------------------------------------------

    def _pad(self, addr: int, nbytes: int, version: Optional[int] = None) -> bytes:
        """Keystream for [addr, addr+nbytes) at the line's current version."""
        if version is None:
            version = self._versions.get(addr - addr % self.line_size, 0)
        prefix = b"pad!" + version.to_bytes(4, "big")
        return ctr_pad(
            self._aes, addr, nbytes,
            lambda block_addr:
                prefix + (block_addr // 16).to_bytes(8, "big"),
        )

    def _pad_blocks(self, nbytes: int) -> int:
        return -(-nbytes // 16)

    def _cache_pad(self, line_addr: int) -> None:
        if line_addr in self._pad_cache:
            self._pad_cache.move_to_end(line_addr)
            return
        pad = self._pad(line_addr, self.line_size) if self.functional else b""
        self._pad_cache[line_addr] = pad
        while len(self._pad_cache) > self.pad_cache_lines:
            self._pad_cache.popitem(last=False)

    # -- functional transform ------------------------------------------------

    def encrypt_line(self, addr: int, plaintext: bytes) -> bytes:
        line_addr = addr - addr % self.line_size
        # A (re)encryption is a write: advance the version, invalidating any
        # cached pad for the line.
        self._versions[line_addr] = self._versions.get(line_addr, 0) + 1
        self._pad_cache.pop(line_addr, None)
        return xor_bytes(plaintext, self._pad(addr, len(plaintext)))

    def decrypt_line(self, addr: int, ciphertext: bytes) -> bytes:
        return xor_bytes(ciphertext, self._pad(addr, len(ciphertext)))

    def encrypt_lines(self, items):
        # Install batch: advance every line's version in order (exactly
        # like per-line encrypt_line), then produce the whole keystream
        # in one kernel call.
        size = 16
        spans = []
        material = []
        for addr, line in items:
            line_addr = addr - addr % self.line_size
            version = self._versions.get(line_addr, 0) + 1
            self._versions[line_addr] = version
            self._pad_cache.pop(line_addr, None)
            prefix = b"pad!" + version.to_bytes(4, "big")
            start = addr - addr % size
            end = -(-(addr + len(line)) // size) * size
            material.append(b"".join(
                prefix + (block_addr // 16).to_bytes(8, "big")
                for block_addr in range(start, end, size)
            ))
            spans.append((addr - start, end - start))
        pad = self._aes.encrypt_blocks(b"".join(material))
        out = []
        pos = 0
        for (offset, span), (_, line) in zip(spans, items):
            out.append(xor_bytes(line, pad[pos + offset:
                                           pos + offset + len(line)]))
            pos += span
        return out

    # -- timing ---------------------------------------------------------------

    def read_extra_cycles(self, addr: int, nbytes: int, mem_cycles: int) -> int:
        nblocks = self._pad_blocks(nbytes)
        self.stats.blocks_processed += nblocks
        if addr in self._pad_cache:
            self.stats.pad_hits += 1
            extra = 1  # XOR only
        else:
            self.stats.pad_misses += 1
            pad_cycles = self.unit.time_for(nblocks)
            # Keystream generation runs concurrently with the fetch; only the
            # excess (plus the final XOR) reaches the critical path.
            extra = max(0, pad_cycles - mem_cycles) + 1
        return extra

    def write_extra_cycles(self, addr: int, nbytes: int) -> int:
        nblocks = self._pad_blocks(nbytes)
        self.stats.blocks_processed += nblocks
        # The fresh-version pad depends only on (addr, version) and can be
        # produced while the writeback sits in the write buffer; one XOR
        # cycle lands on the path.
        return 1

    # -- system hooks ----------------------------------------------------------

    def fill_line(self, port: MemoryPort, addr: int, line_size: int
                  ) -> Tuple[bytes, int]:
        plaintext, cycles = super().fill_line(port, addr, line_size)
        # Pad-ahead: precompute keystream for the next sequential lines.
        for i in range(1, self.pad_ahead_depth + 1):
            self._cache_pad(addr + i * line_size)
        return plaintext, cycles

    def _pads_bulk(self, addrs: Sequence[int], nbytes: int) -> List[bytes]:
        """Decrypt pads for a group of fills in one keystream call.

        Byte-for-byte the same pads :meth:`_pad` produces per line (same
        counter-block layout, batched through one ``encrypt_blocks``).
        Only valid while no write intervenes: versions are read up front.
        """
        size = 16
        spans: List[Tuple[int, int]] = []
        material: List[bytes] = []
        for addr in addrs:
            version = self._versions.get(addr - addr % self.line_size, 0)
            prefix = b"pad!" + version.to_bytes(4, "big")
            start = addr - addr % size
            end = -(-(addr + nbytes) // size) * size
            material.append(b"".join(
                prefix + (block_addr // 16).to_bytes(8, "big")
                for block_addr in range(start, end, size)
            ))
            spans.append((addr - start, end - start))
        pad = self._aes.encrypt_blocks(b"".join(material))
        out: List[bytes] = []
        pos = 0
        for offset, span in spans:
            out.append(pad[pos + offset: pos + offset + nbytes])
            pos += span
        return out

    def fill_lines(self, port: MemoryPort, addrs: Sequence[int],
                   line_size: int) -> List[Tuple[bytes, int]]:
        # Versions only advance on writes, so every line's decrypt pad is
        # known up front and the whole group's keystream comes from one
        # batched call.  The per-line sequencing — bus read, pad-cache
        # timing, events, pad-ahead — is unchanged and in order, so the
        # pad-cache hit/miss stats evolve exactly as under scalar fills.
        if not self.functional:
            return super().fill_lines(port, addrs, line_size)
        pads = self._pads_bulk(addrs, line_size)
        out: List[Tuple[bytes, int]] = []
        for addr, pad in zip(addrs, pads):
            ciphertext, mem_cycles = port.read(addr, line_size)
            extra = self.read_extra_cycles(addr, line_size, mem_cycles)
            self.stats.lines_decrypted += 1
            self.stats.extra_read_cycles += extra
            if self.sink is not None:
                self._emit("decipher", addr, line_size)
                if extra:
                    self._emit("stall", addr, extra, "read")
            out.append((xor_bytes(ciphertext, pad), mem_cycles + extra))
            for i in range(1, self.pad_ahead_depth + 1):
                self._cache_pad(addr + i * line_size)
        return out

    def write_partial(self, port: MemoryPort, addr: int, data: bytes,
                      line_size: int) -> int:
        if self.reuse_pad_on_partial_write:
            # INSECURE shortcut: patch the bytes under the existing pad (no
            # version bump, no read-modify-write).  Two writes to the same
            # bytes leak their XOR; kept only as a measurable design mistake.
            self.stats.blocks_processed += self._pad_blocks(len(data))
            self._emit("encipher", addr, len(data), "pad-reuse")
            ciphertext = (
                xor_bytes(data, self._pad(addr, len(data)))
                if self.functional else data
            )
            return 1 + port.write(addr, ciphertext)

        if addr % line_size == 0 and len(data) % line_size == 0:
            return self.write_line(port, addr, data)

        # Secure partial write: the fresh version re-keys the whole line, so
        # the untouched bytes must be re-enciphered too — a full-line
        # read-modify-write despite the byte-granular cipher.
        start = addr - addr % line_size
        end = -(-(addr + len(data)) // line_size) * line_size
        self.stats.rmw_operations += 1
        self._emit("rmw", addr, end - start)
        self._emit("decipher", start, end - start)
        self._emit("encipher", start, end - start)
        ciphertext, read_cycles = port.read(start, end - start)
        dec_extra = self.read_extra_cycles(start, end - start, read_cycles)
        block = bytearray(
            self.decrypt_line(start, ciphertext) if self.functional
            else ciphertext
        )
        block[addr - start: addr - start + len(data)] = data
        enc_extra = self.write_extra_cycles(start, end - start)
        self.stats.extra_read_cycles += dec_extra
        self.stats.extra_write_cycles += enc_extra
        if dec_extra + enc_extra:
            self._emit("stall", addr, dec_extra + enc_extra, "rmw")
        new_ct = (
            self.encrypt_line(start, bytes(block)) if self.functional
            else bytes(block)
        )
        return read_cycles + dec_extra + enc_extra + port.write(start, new_ct)

    def area(self) -> AreaEstimate:
        est = AreaEstimate(self.name)
        est.add_block("aes_pipelined")
        est.add_sram("pad-cache", self.pad_cache_lines * self.line_size)
        est.add_sram("version-table", 4 * 4096)
        est.add_block("control_overhead")
        return est
