"""General Instrument's 3DES-CBC engine with keyed-hash authentication
(survey Figure 5, patent [11]).

"Another patent, by General Instrument Corporation, proposed to encrypt the
memory content with a 3-DES in block chaining mode (CBC), and to offer the
possibility to authenticate the data coming from external memory thanks to a
keyed hash algorithm.  Nonetheless ... cipher block chaining technique is
very robust but implies unacceptable CPU performance degradation for random
accesses in external memory."

Modeling notes.  The patent chains (and reorders) blocks across a whole
protected *region*; reconstructing any line requires processing the chain
from the region start — that is the random-access penalty the survey calls
unacceptable, and what E08 measures.  A write to a line invalidates every
subsequent ciphertext block in its region, so the chain is re-enciphered
from the written block to the region end.  Region size is a parameter
(whole-image chaining is ``region_size = image size``); at
``region_size == line_size`` the design degenerates into AEGIS-style
per-line chaining, which E08's sweep includes as the fixed point.

Authentication: each region carries an HMAC-SHA256 tag over its ciphertext
(encrypt-then-MAC).  ``verify_region`` recomputes it, detecting any bus- or
memory-level tamper; the timing model charges one hash-pipeline pass per
verified region entry.
"""

from __future__ import annotations

import warnings
from collections import OrderedDict
from typing import Dict, FrozenSet, Tuple

from ..crypto.hmac import hmac_sha256, verify_hmac
from ..crypto.kernels import tdes_kernel
from ..crypto.modes import CBC
from ..sim.area import AreaEstimate
from ..sim.pipeline import PipelinedUnit, TDES_ITERATIVE
from .engine import BusEncryptionEngine, MemoryPort, TamperDetected

__all__ = ["GeneralInstrumentEngine", "AuthenticationError"]

#: Memoized region transforms, keyed (key schedule, region base, bytes).
#: ~1 KiB per entry at the default region size.
_REGION_MEMO: "OrderedDict[tuple, bytes]" = OrderedDict()
_REGION_MEMO_MAX = 512


class AuthenticationError(TamperDetected):
    """A region's keyed-hash tag did not match its contents."""


class GeneralInstrumentEngine(BusEncryptionEngine):
    """Region-chained 3DES-CBC with HMAC authentication."""

    name = "general-instrument-3des-cbc"

    def __init__(
        self,
        key: bytes,
        mac_key: bytes = None,
        region_size: int = 1024,
        line_size: int = 32,
        unit: PipelinedUnit = TDES_ITERATIVE,
        authenticate: bool = True,
        reorder: bool = False,
        hash_latency: int = 64,
        functional: bool = True,
    ):
        if region_size % line_size != 0:
            raise ValueError(
                f"region_size {region_size} must be a multiple of "
                f"line_size {line_size}"
            )
        super().__init__(functional=functional)
        self._tdes = tdes_kernel(key)
        # Memo identity for region transforms: the raw key bytes, not the
        # kernel object — every backend rung (table kernel, reference
        # wrapper) computes the same function of (key, base, bytes).
        self._tdes_key = bytes(key)
        self._mac_key = mac_key if mac_key is not None else bytes(
            b ^ 0xA5 for b in key
        )
        self.region_size = region_size
        self.line_size = line_size
        self.unit = unit
        self.authenticate = authenticate
        #: The patent's second layer: ciphertext blocks are stored in a
        #: keyed permuted order within the region.  Costs the sequential
        #: chain shortcut (continuations become scattered fetches) and
        #: turns restarts into whole-region bursts.
        self.reorder = reorder
        self.hash_latency = hash_latency
        self.min_write_bytes = 8
        self._perm_cache: Dict[int, list] = {}
        #: Region base address -> HMAC tag over the region ciphertext.
        self._tags: Dict[int, bytes] = {}
        #: Regions whose tag has been checked since last modification.
        self._verified: set = set()
        #: CBC chain register: region base -> (next sequential address,
        #: last ciphertext block).  A fill continuing exactly where the
        #: previous one stopped keeps chaining without reprocessing the
        #: prefix — the hardware keeps the chaining value in a register, so
        #: sequential walks are cheap and JUMPs pay the restart (§2.2).
        self._chain_state: Dict[int, Tuple[int, bytes]] = {}
        self.chain_hits = 0
        self.chain_restarts = 0

    @property
    def tamper_detected(self) -> int:
        """Deprecated alias of ``self.verdicts.tampers``."""
        warnings.warn(
            "GeneralInstrumentEngine.tamper_detected is deprecated; read "
            "engine.verdicts.tampers instead",
            DeprecationWarning, stacklevel=2,
        )
        return self.verdicts.tampers

    @property
    def detects(self) -> FrozenSet[str]:
        """With ``authenticate=True`` the keyed hash over a whole region's
        ciphertext catches every stored-bytes attack, replay included —
        the reference tag lives in on-chip state, not in external memory.
        Without it the chained cipher only garbles, never rejects."""
        if not self.authenticate:
            return frozenset()
        return frozenset({"spoof", "splice", "replay", "glitch"})

    # -- region geometry ---------------------------------------------------

    def _region_base(self, addr: int) -> int:
        return addr - addr % self.region_size

    def _region_iv(self, base: int) -> bytes:
        return self._tdes.encrypt_block(base.to_bytes(8, "big"))

    # -- block reordering ---------------------------------------------------

    def _permutation(self, base: int) -> list:
        """Keyed storage permutation: logical block i lives at slot P[i]."""
        cached = self._perm_cache.get(base)
        if cached is not None:
            return cached
        from ..crypto.hmac import prf

        n = self.region_size // 8
        material = prf(self._mac_key, b"reorder", base.to_bytes(8, "big"),
                       out_len=4 * n)
        perm = list(range(n))
        for i in range(n - 1, 0, -1):
            r = int.from_bytes(material[2 * i: 2 * i + 2], "big") % (i + 1)
            perm[i], perm[r] = perm[r], perm[i]
        self._perm_cache[base] = perm
        return perm

    def _permute_store(self, base: int, logical_ct: bytes) -> bytes:
        """Logical (chained-order) ciphertext -> stored layout."""
        if not self.reorder:
            return logical_ct
        perm = self._permutation(base)
        stored = bytearray(len(logical_ct))
        for i in range(len(logical_ct) // 8):
            stored[perm[i] * 8: perm[i] * 8 + 8] = \
                logical_ct[i * 8: i * 8 + 8]
        return bytes(stored)

    def _unpermute_load(self, base: int, stored: bytes) -> bytes:
        """Stored layout -> logical (chained-order) ciphertext."""
        if not self.reorder:
            return stored
        perm = self._permutation(base)
        logical = bytearray(len(stored))
        for i in range(len(stored) // 8):
            logical[i * 8: i * 8 + 8] = \
                stored[perm[i] * 8: perm[i] * 8 + 8]
        return bytes(logical)

    # -- whole-region functional transform -----------------------------------
    #
    # Region transforms are pure functions of (key schedule, base, bytes):
    # the IV derives from the base alone.  The suite re-installs the same
    # images into fresh rigs constantly (sweeps, campaigns, overhead
    # grids), and the serial 3DES-CBC chain is the most expensive cipher
    # in the registry, so identical transforms are memoized module-wide.

    def _encrypt_region(self, base: int, plaintext: bytes) -> bytes:
        key = (self._tdes_key, "enc", base, plaintext)
        cached = _REGION_MEMO.get(key)
        if cached is None:
            cached = CBC(self._tdes, self._region_iv(base)).encrypt(plaintext)
            _REGION_MEMO[key] = cached
            while len(_REGION_MEMO) > _REGION_MEMO_MAX:
                _REGION_MEMO.popitem(last=False)
        else:
            _REGION_MEMO.move_to_end(key)
        return cached

    def _decrypt_region(self, base: int, ciphertext: bytes) -> bytes:
        key = (self._tdes_key, "dec", base, ciphertext)
        cached = _REGION_MEMO.get(key)
        if cached is None:
            cached = CBC(self._tdes, self._region_iv(base)).decrypt(ciphertext)
            _REGION_MEMO[key] = cached
            while len(_REGION_MEMO) > _REGION_MEMO_MAX:
                _REGION_MEMO.popitem(last=False)
        else:
            _REGION_MEMO.move_to_end(key)
        return cached

    # -- BusEncryptionEngine interface ----------------------------------------
    #
    # encrypt_line/decrypt_line operate in region context: the engine reads
    # whatever prefix of the region the chain requires.  They are exercised
    # through install_image / fill_line / write_line below, which carry the
    # memory handle needed for the chained prefix.

    def encrypt_line(self, addr: int, plaintext: bytes) -> bytes:
        raise NotImplementedError(
            "region-chained engine: use install_image/fill_line/write_line"
        )

    def decrypt_line(self, addr: int, ciphertext: bytes) -> bytes:
        raise NotImplementedError(
            "region-chained engine: use install_image/fill_line/write_line"
        )

    def read_extra_cycles(self, addr: int, nbytes: int, mem_cycles: int) -> int:
        raise NotImplementedError

    def write_extra_cycles(self, addr: int, nbytes: int) -> int:
        raise NotImplementedError

    # -- installation ------------------------------------------------------------

    def install_image(self, memory, base_addr: int, plaintext: bytes,
                      line_size: int = 32) -> None:
        if base_addr % self.region_size != 0:
            raise ValueError(
                f"image base {base_addr:#x} must align to the region size"
            )
        if len(plaintext) % self.region_size != 0:
            plaintext = plaintext + b"\x00" * (
                self.region_size - len(plaintext) % self.region_size
            )
        for offset in range(0, len(plaintext), self.region_size):
            base = base_addr + offset
            region = plaintext[offset: offset + self.region_size]
            stored = self._permute_store(base, self._encrypt_region(base, region))
            memory.load_image(base, stored)
            self._tags[base] = hmac_sha256(self._mac_key, stored)

    # -- fill / write ---------------------------------------------------------------

    def _chain_blocks_to(self, base: int, addr: int, nbytes: int) -> int:
        """8-byte chain blocks that must be processed to reach the target."""
        return (addr + nbytes - base) // 8

    def _fill_line_reordered(self, port: MemoryPort, addr: int,
                             line_size: int) -> Tuple[bytes, int]:
        """Reordered layout: any fill is a whole-region burst + un-permute."""
        base = self._region_base(addr)
        stored, cycles = port.read(base, self.region_size)
        nblocks = self._chain_blocks_to(base, addr, line_size)
        extra = self.unit.drain_after_arrivals(nblocks, 1)
        cycles += extra
        self.stats.lines_decrypted += 1
        self.stats.blocks_processed += line_size // 8
        self.stats.extra_read_cycles += extra
        self._emit("decipher", addr, line_size, "reordered")
        if extra:
            self._emit("stall", addr, extra, "read")

        if self.authenticate and base not in self._verified:
            cycles += self.hash_latency
            tag = self._tags.get(base)
            ok = (not self.functional
                  or (tag is not None
                      and verify_hmac(self._mac_key, bytes(stored), tag)))
            if not self.verify_line(base, self.region_size, ok):
                raise AuthenticationError(
                    f"region at {base:#x} failed keyed-hash verification"
                )
            self._verified.add(base)

        if self.functional:
            logical = self._unpermute_load(base, bytes(stored))
            offset = addr - base
            chain_iv = (logical[offset - 8: offset] if offset > 0
                        else self._region_iv(base))
            plaintext = CBC(self._tdes, chain_iv).decrypt(
                logical[offset: offset + line_size]
            )
        else:
            plaintext = bytes(stored[addr - base: addr - base + line_size])
        return plaintext, cycles

    def fill_line(self, port: MemoryPort, addr: int, line_size: int
                  ) -> Tuple[bytes, int]:
        if self.reorder:
            return self._fill_line_reordered(port, addr, line_size)
        base = self._region_base(addr)
        chain = self._chain_state.get(base)
        cycles = 0

        if chain is not None and chain[0] == addr:
            # Sequential continuation: the chaining value sits in the
            # hardware register; only the requested line crosses the bus.
            self.chain_hits += 1
            chain_iv = chain[1]
            line_ct, mem_cycles = port.read(addr, line_size)
            nblocks = line_size // 8
            extra = self.unit.drain_after_arrivals(nblocks, 1)
            cycles += mem_cycles + extra
            prefix_ct = None
        else:
            # JUMP: the chain restarts from the region base — the random
            # access penalty the survey calls unacceptable.
            self.chain_restarts += 1
            span = addr + line_size - base
            prefix_ct, mem_cycles = port.read(base, span)
            nblocks = self._chain_blocks_to(base, addr, line_size)
            extra = self.unit.drain_after_arrivals(nblocks, 1)
            cycles += mem_cycles + extra
            line_ct = prefix_ct[addr - base:]
            chain_iv = (
                prefix_ct[addr - base - 8: addr - base]
                if addr > base else self._region_iv(base)
            )

        self.stats.lines_decrypted += 1
        self.stats.blocks_processed += line_size // 8
        self.stats.extra_read_cycles += extra
        self._emit("decipher", addr, line_size,
                   "chain" if prefix_ct is None else "jump")
        if extra:
            self._emit("stall", addr, extra, "read")

        if self.authenticate and base not in self._verified:
            # First touch of the region: fetch whatever of the region has
            # not been read yet and verify the keyed hash over all of it.
            already = len(prefix_ct) if prefix_ct is not None else 0
            if prefix_ct is None:
                head, head_cycles = port.read(base, addr - base)
                cycles += head_cycles
                prefix_ct = head + line_ct
                already = len(prefix_ct)
            rest, rest_cycles = port.read(
                base + already, self.region_size - already
            )
            cycles += rest_cycles + self.hash_latency
            full = prefix_ct + rest
            tag = self._tags.get(base)
            ok = (not self.functional
                  or (tag is not None
                      and verify_hmac(self._mac_key, full, tag)))
            if not self.verify_line(base, self.region_size, ok):
                raise AuthenticationError(
                    f"region at {base:#x} failed keyed-hash verification"
                )
            self._verified.add(base)

        if self.functional:
            plaintext = CBC(self._tdes, chain_iv).decrypt(line_ct[:line_size])
        else:
            plaintext = bytes(line_ct[:line_size])

        # Advance the chain register past this line (unless at region end).
        next_addr = addr + line_size
        if next_addr < base + self.region_size:
            self._chain_state[base] = (next_addr, bytes(line_ct[line_size - 8: line_size]))
        else:
            self._chain_state.pop(base, None)
        return plaintext, cycles

    def write_line(self, port: MemoryPort, addr: int, plaintext: bytes) -> int:
        """Rewrite a line: re-encipher the chain from the line to region end."""
        base = self._region_base(addr)
        # Re-enciphering the tail needs the plaintext of everything from the
        # written line to the region end, hence a full region fetch first.
        cycles = 0
        tail_start = addr - base
        region_ct, read_cycles = port.read(base, self.region_size)
        cycles += read_cycles
        dec_blocks = self.region_size // 8
        cycles += self.unit.drain_after_arrivals(dec_blocks, 1)
        self.stats.blocks_processed += dec_blocks

        if self.functional:
            logical_ct = self._unpermute_load(base, bytes(region_ct))
            # CBC prefix reuse: blocks before the written line keep their
            # plaintext, so re-enciphering them reproduces the stored
            # ciphertext bit-for-bit.  Only the tail needs the cipher —
            # decrypt it, patch the line, re-chain from the same IV.
            chain_iv = (logical_ct[tail_start - 8: tail_start]
                        if tail_start else self._region_iv(base))
            tail_plain = bytearray(
                CBC(self._tdes, chain_iv).decrypt(logical_ct[tail_start:])
            )
            tail_plain[: len(plaintext)] = plaintext
            new_logical = logical_ct[:tail_start] + CBC(
                self._tdes, chain_iv
            ).encrypt(bytes(tail_plain))
            new_stored = self._permute_store(base, new_logical)
        else:
            region_plain = bytearray(region_ct)
            region_plain[tail_start: tail_start + len(plaintext)] = plaintext
            new_logical = bytes(region_plain)
            new_stored = new_logical

        enc_blocks = (self.region_size - tail_start) // 8
        # CBC encryption is inherently serial: latency per block.
        enc_cycles = enc_blocks * self.unit.latency
        cycles += enc_cycles
        self.stats.lines_encrypted += 1
        self.stats.extra_write_cycles += enc_cycles
        self._emit("encipher", addr, len(plaintext), "re-chain")
        if enc_cycles:
            self._emit("stall", addr, enc_cycles, "write")
        if self.reorder:
            # The re-enciphered tail scatters across the region: the whole
            # stored region crosses the bus again.
            cycles += port.write(base, new_stored)
        else:
            # Only the modified tail actually crosses the bus again.
            cycles += port.write(base + tail_start, new_stored[tail_start:])
            if self.functional:
                # Keep the untouched prefix consistent in the store.
                port.memory.load_image(base, new_stored[:tail_start])
        if self.functional:
            self._tags[base] = hmac_sha256(self._mac_key, new_stored)
        self._verified.discard(base)
        self._chain_state.pop(base, None)
        if self.authenticate:
            cycles += self.hash_latency
        return cycles

    def write_partial(self, port: MemoryPort, addr: int, data: bytes,
                      line_size: int) -> int:
        # Any write re-chains the tail; delegate to write_line semantics on
        # the enclosing line for accounting simplicity.
        self.stats.rmw_operations += 1
        self._emit("rmw", addr, line_size)
        line_base = addr - addr % line_size
        ciphertext_line, _ = self.fill_line(port, line_base, line_size)
        patched = bytearray(ciphertext_line)
        patched[addr - line_base: addr - line_base + len(data)] = data
        return self.write_line(port, line_base, bytes(patched))

    # -- verification API ----------------------------------------------------------

    def verify_region(self, memory, base: int) -> bool:
        """Recheck one region's tag against memory contents (test hook)."""
        ciphertext = memory.dump(base, self.region_size)
        tag = self._tags.get(base)
        if tag is None:
            return False
        return self.verify_line(
            base, self.region_size, verify_hmac(self._mac_key, ciphertext, tag)
        )

    def read_plain(self, memory, addr: int, nbytes: int) -> bytes:
        """Decrypt arbitrary installed bytes (verification helper)."""
        out = bytearray()
        first = self._region_base(addr)
        last = self._region_base(addr + nbytes - 1)
        for base in range(first, last + self.region_size, self.region_size):
            stored = memory.dump(base, self.region_size)
            out += self._decrypt_region(
                base, self._unpermute_load(base, stored)
            )
        offset = addr - first
        return bytes(out[offset: offset + nbytes])

    def area(self) -> AreaEstimate:
        est = AreaEstimate(self.name)
        est.add_block("tdes_pipelined")
        if self.authenticate:
            est.add_block("hmac_sha256")
        est.add_block("control_overhead")
        return est
