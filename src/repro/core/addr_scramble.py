"""Line-address scrambling as a system-level countermeasure.

Best's patents enciphered addresses as well as data, and
:mod:`repro.attacks.access_pattern` shows why one might want to: content
encryption leaves the access *pattern* on the pins.  This wrapper permutes
the line-address space with a keyed bijection before any inner engine sees
it, so a probe watches fetches hop pseudo-randomly through physical memory
instead of walking the program counter.

What it buys and what it doesn't (measured in the tests):

* a sequential victim is no longer classifiable as sequential — the
  first-order pattern leak closes;
* the working-set *size* and line *revisit* structure still leak (the
  permutation is fixed), and so does timing — the honest limits, which is
  why the real fix (ORAM) costs so much more.
"""

from __future__ import annotations

from typing import Tuple

from ..crypto.address_scrambler import AddressScrambler
from ..sim.area import AreaEstimate
from .engine import BusEncryptionEngine, MemoryPort

__all__ = ["AddressScrambledEngine"]


class AddressScrambledEngine(BusEncryptionEngine):
    """Wrap any engine with a keyed line-address permutation.

    ``region_lines`` line slots starting at ``region_base`` are permuted;
    the inner engine operates on (and tweaks by) the *physical* line
    address, exactly like the scrambled Dallas parts.
    """

    name = "addr-scrambled"
    #: Address scrambling hides *where* a line lives, it never rejects a
    #: tampered line; detection is whatever the wrapped engine provides.
    detects = frozenset()

    def __init__(
        self,
        inner: BusEncryptionEngine,
        addr_key: bytes,
        region_base: int = 0,
        region_lines: int = 1024,
        line_size: int = 32,
        translate_latency: int = 1,
    ):
        super().__init__(functional=inner.functional)
        self.inner = inner
        self.region_base = region_base
        self.region_lines = region_lines
        self.line_size = line_size
        self.translate_latency = translate_latency
        self.min_write_bytes = inner.min_write_bytes
        self._scrambler = AddressScrambler(addr_key, size=region_lines)
        self.name = f"addr-scrambled({inner.name})"

    # -- translation -------------------------------------------------------

    def physical(self, addr: int) -> int:
        """Logical byte address -> physical byte address (line granular)."""
        offset = addr - self.region_base
        line, within = divmod(offset, self.line_size)
        if not 0 <= line < self.region_lines:
            raise ValueError(
                f"address {addr:#x} outside the scrambled region"
            )
        return (self.region_base
                + self._scrambler.scramble(line) * self.line_size + within)

    # -- functional transform (inner, keyed by physical address) ------------

    def encrypt_line(self, addr: int, plaintext: bytes) -> bytes:
        return self.inner.encrypt_line(self.physical(addr), plaintext)

    def decrypt_line(self, addr: int, ciphertext: bytes) -> bytes:
        return self.inner.decrypt_line(self.physical(addr), ciphertext)

    def read_extra_cycles(self, addr: int, nbytes: int, mem_cycles: int) -> int:
        return self.translate_latency + self.inner.read_extra_cycles(
            self.physical(addr), nbytes, mem_cycles
        )

    def write_extra_cycles(self, addr: int, nbytes: int) -> int:
        return self.translate_latency + self.inner.write_extra_cycles(
            self.physical(addr), nbytes
        )

    # -- system entry points ---------------------------------------------------

    def install_image(self, memory, base_addr: int, plaintext: bytes,
                      line_size: int = 32) -> None:
        if line_size != self.line_size:
            raise ValueError(
                f"engine line size {self.line_size} != system {line_size}"
            )
        if len(plaintext) % line_size != 0:
            plaintext = plaintext + b"\x00" * (
                line_size - len(plaintext) % line_size
            )
        items = [
            (self.physical(base_addr + offset),
             plaintext[offset: offset + line_size])
            for offset in range(0, len(plaintext), line_size)
        ]
        for (phys, _), ciphertext in zip(items,
                                         self.inner.encrypt_lines(items)):
            memory.load_image(phys, ciphertext)

    def fill_line(self, port: MemoryPort, addr: int, line_size: int
                  ) -> Tuple[bytes, int]:
        phys = self.physical(addr)
        plaintext, cycles = self.inner.fill_line(port, phys, line_size)
        self.stats.lines_decrypted += 1
        return plaintext, cycles + self.translate_latency

    def write_line(self, port: MemoryPort, addr: int, plaintext: bytes) -> int:
        phys = self.physical(addr)
        self.stats.lines_encrypted += 1
        return self.translate_latency + self.inner.write_line(
            port, phys, plaintext
        )

    def write_partial(self, port: MemoryPort, addr: int, data: bytes,
                      line_size: int) -> int:
        line_start = addr - addr % line_size
        phys_line = self.physical(line_start)
        phys = phys_line + (addr - line_start)
        return self.translate_latency + self.inner.write_partial(
            port, phys, data, line_size
        )

    def area(self) -> AreaEstimate:
        est = AreaEstimate(self.name)
        inner = self.inner.area()
        for label, gates in inner.items.items():
            est.add(f"inner/{label}", gates)
        # A small Feistel permutation network on the address lines.
        est.add("address-permutation", 4_000)
        return est
