"""XOM-style pipelined-AES bus encryption engine ([13] in the survey).

The XOM project uses "a pipelined AES block cipher as cipher unit which
features a low latency of 14 cycles, while a throughput of one
encrypted/decrypted data per clock cycle is claimed".  Each 16-byte block is
enciphered independently in an address-tweaked ECB (XEX-style masking), so
any block can be fetched and deciphered with no chaining state — full random
access, at the cost of deterministic encryption per address (same plaintext
at the same address always yields the same ciphertext; AEGIS's IVs fix
that, see :mod:`repro.core.aegis`).

Experiment E10 uses this engine to make the survey's own caveat concrete:
"taking into account only the latency doesn't inform about the overall
system cost".
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..crypto.kernels import aes_kernel
from ..crypto.modes import xor_bytes
from ..sim.area import AreaEstimate
from ..sim.pipeline import XOM_AES_PIPE, PipelinedUnit
from .engine import BlockModeEngine, MemoryPort

__all__ = ["XomAesEngine"]


class XomAesEngine(BlockModeEngine):
    """Address-tweaked AES engine with XOM's published pipeline figures."""

    name = "xom-aes"
    #: Confidentiality only in this model (published XOM adds MACs — that
    #: composition is the registry's "integrity-xom").
    detects = frozenset()

    def __init__(
        self,
        key: bytes,
        unit: PipelinedUnit = XOM_AES_PIPE,
        functional: bool = True,
        **kwargs,
    ):
        super().__init__(unit=unit, cipher_block=16, functional=functional,
                         **kwargs)
        self._aes = aes_kernel(key)
        # Tweak mask key: independent schedule derived from the main key.
        self._tweak_aes = aes_kernel(bytes(b ^ 0x5C for b in key))

    def _mask(self, addr: int) -> bytes:
        """XEX mask for the block at byte address ``addr``."""
        return self._tweak_aes.encrypt_block(addr.to_bytes(16, "big"))

    def _masks(self, addr: int, nbytes: int) -> bytes:
        """Concatenated XEX masks for every 16-byte block of the line."""
        material = b"".join(
            (addr + i).to_bytes(16, "big") for i in range(0, nbytes, 16)
        )
        return self._tweak_aes.encrypt_blocks(material)

    def encrypt_line(self, addr: int, plaintext: bytes) -> bytes:
        masks = self._masks(addr, len(plaintext))
        return xor_bytes(
            self._aes.encrypt_blocks(xor_bytes(plaintext, masks)), masks
        )

    def decrypt_line(self, addr: int, ciphertext: bytes) -> bytes:
        masks = self._masks(addr, len(ciphertext))
        return xor_bytes(
            self._aes.decrypt_blocks(xor_bytes(ciphertext, masks)), masks
        )

    def encrypt_lines(self, items):
        # XEX is ECB over independent blocks: the whole install batch
        # enciphers in two kernel calls (masks, then blocks).
        if not items or any(len(line) % 16 for _, line in items):
            return super().encrypt_lines(items)
        material = b"".join(
            (addr + i).to_bytes(16, "big")
            for addr, line in items for i in range(0, len(line), 16)
        )
        masks = self._tweak_aes.encrypt_blocks(material)
        plain = b"".join(line for _, line in items)
        ct = xor_bytes(
            self._aes.encrypt_blocks(xor_bytes(plain, masks)), masks
        )
        out: List[bytes] = []
        pos = 0
        for _, line in items:
            out.append(ct[pos: pos + len(line)])
            pos += len(line)
        return out

    def fill_lines(self, port: MemoryPort, addrs: Sequence[int],
                   line_size: int) -> List[Tuple[bytes, int]]:
        # XEX masking is ECB over independent blocks, so the whole group
        # deciphers in two kernel calls (masks, then blocks) instead of
        # two per line.  Bus reads, stats and events stay per-line and in
        # order — see the fill_lines contract.
        if self.functional and line_size % 16:
            return super().fill_lines(port, addrs, line_size)
        ciphertexts: List[bytes] = []
        cycles: List[int] = []
        for addr in addrs:
            ciphertext, mem_cycles = port.read(addr, line_size)
            extra = self.read_extra_cycles(addr, line_size, mem_cycles)
            self.stats.lines_decrypted += 1
            self.stats.extra_read_cycles += extra
            if self.sink is not None:
                self._emit("decipher", addr, line_size)
                if extra:
                    self._emit("stall", addr, extra, "read")
            ciphertexts.append(ciphertext)
            cycles.append(mem_cycles + extra)
        if not self.functional:
            return list(zip(ciphertexts, cycles))
        material = b"".join(
            (addr + i).to_bytes(16, "big")
            for addr in addrs for i in range(0, line_size, 16)
        )
        masks = self._tweak_aes.encrypt_blocks(material)
        plain = xor_bytes(
            self._aes.decrypt_blocks(xor_bytes(b"".join(ciphertexts), masks)),
            masks,
        )
        return [
            (plain[i * line_size: (i + 1) * line_size], cycles[i])
            for i in range(len(addrs))
        ]

    def area(self) -> AreaEstimate:
        est = AreaEstimate(self.name)
        est.add_block("aes_pipelined")
        est.add_block("control_overhead")
        return est
