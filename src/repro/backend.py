"""Backend dispatch ladder: algebraic reference -> kernel -> numpy.

The reproduction keeps three implementations of its hot paths, each a rung
on a ladder (DESIGN.md, "Backend dispatch ladder"):

``python``
    The algebraic reference ciphers (:mod:`repro.crypto.aes`,
    :mod:`repro.crypto.des`) and the scalar per-access execution loop
    (:meth:`repro.sim.system.SecureSystem.step`).  Slowest, and the
    ground truth everything else is gated against.
``kernel``
    T-table / bit-packed cipher kernels (:mod:`repro.crypto.kernels`)
    plus the batched trace executor (:mod:`repro.sim.fastpath`).
``numpy``
    Array-programmed cipher kernels and trace executor operating on whole
    batches as ndarrays.  Selected only when numpy imports *and* the
    import-time equivalence probe in :mod:`repro.crypto.kernels` passes —
    the same pattern as ``repro.crypto.sha256.HASHLIB_BACKED``.

Selection happens once at import.  ``REPRO_BACKEND`` overrides it:
``numpy`` | ``kernel`` | ``python`` force a rung (``numpy`` still degrades
to ``kernel`` with a one-line warning when numpy is unusable — never a
crash); ``auto``/unset probes from the top.

Every rung produces byte-identical metrics: reports, bus streams and
sink totals are locked by ``tests/test_fastpath.py``, ``make vector-smoke``
and the CI leg that replays the quick suite under ``REPRO_BACKEND=python``.
"""

from __future__ import annotations

import os
import warnings

__all__ = ["REQUESTED", "ACTIVE", "NUMPY", "BACKEND_NAMES", "demote",
           "execution_backend"]

BACKEND_NAMES = ("numpy", "kernel", "python")

_raw = os.environ.get("REPRO_BACKEND", "auto").strip().lower() or "auto"
if _raw not in BACKEND_NAMES + ("auto",):
    warnings.warn(
        f"REPRO_BACKEND={_raw!r} is not one of {BACKEND_NAMES + ('auto',)}; "
        "falling back to auto",
        RuntimeWarning, stacklevel=2,
    )
    _raw = "auto"

#: What the environment asked for (``auto`` when unset).
REQUESTED: str = _raw

NUMPY = None
if REQUESTED in ("auto", "numpy"):
    try:
        import numpy as NUMPY  # noqa: N812 - module alias by design
    except ImportError:
        NUMPY = None
        if REQUESTED == "numpy":
            warnings.warn(
                "REPRO_BACKEND=numpy but numpy is not importable; "
                "falling back to the kernel backend",
                RuntimeWarning, stacklevel=2,
            )

#: The selected rung.  ``numpy`` here is provisional until the kernel
#: equivalence probe confirms it (import repro.crypto.kernels to settle it).
ACTIVE: str = (
    "python" if REQUESTED == "python"
    else "kernel" if REQUESTED == "kernel" or NUMPY is None
    else "numpy"
)


def demote(reason: str) -> None:
    """Drop from the numpy rung to the kernel rung (never a crash).

    Called by the import-time equivalence probe when the array kernels
    disagree with the scalar kernels — one line of warning, then the
    process continues on the proven path.
    """
    global ACTIVE, NUMPY
    if ACTIVE == "numpy":
        warnings.warn(
            f"numpy backend disabled ({reason}); using kernel backend",
            RuntimeWarning, stacklevel=2,
        )
        ACTIVE = "kernel"
    NUMPY = None


def execution_backend() -> str:
    """The rung the trace executor should use right now."""
    return ACTIVE
