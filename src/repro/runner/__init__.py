"""Parallel experiment runner with structured metrics.

The package turns the repo's 19 survey experiments into a declarative
registry (:mod:`repro.runner.experiments`) executed by
:class:`ExperimentRunner`: a multiprocessing worker pool with
deterministic per-task seeding, an on-disk JSON result cache, and
machine-readable metrics output (see ``python -m repro.cli bench``).

This top level is the supported import surface for code outside
``repro`` (benchmarks, examples): deeper modules may be reorganized.
"""

from .base import Experiment, TaskContext, task_seed
from .cache import ResultCache, stable_floats
from .runner import (
    METRICS_SCHEMA,
    ExperimentRunner,
    RunResult,
    fork_pool,
    to_canonical_json,
)

__all__ = [
    "Experiment",
    "ExperimentRunner",
    "METRICS_SCHEMA",
    "ResultCache",
    "RunResult",
    "TaskContext",
    "fork_pool",
    "get_experiment",
    "list_experiments",
    "stable_floats",
    "task_seed",
    "to_canonical_json",
]


def get_experiment(experiment_id: str) -> Experiment:
    """Look up one registry experiment by id (e.g. ``"e02"``).

    Thin re-export so external callers don't need the deep
    ``repro.runner.experiments`` path (which stays import-heavy: it
    pulls in every experiment module).
    """
    from .experiments import get_experiment as _get_experiment

    return _get_experiment(experiment_id)


def list_experiments() -> list:
    """Sorted ids of every registered experiment."""
    from .experiments import EXPERIMENTS

    return sorted(EXPERIMENTS)
