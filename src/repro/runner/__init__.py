"""Parallel experiment runner with structured metrics.

The package turns the repo's 18 survey experiments into a declarative
registry (:mod:`repro.runner.experiments`) executed by
:class:`ExperimentRunner`: a multiprocessing worker pool with
deterministic per-task seeding, an on-disk JSON result cache, and
machine-readable metrics output (see ``python -m repro.cli bench``).
"""

from .base import Experiment, TaskContext, task_seed
from .cache import ResultCache
from .runner import METRICS_SCHEMA, ExperimentRunner, RunResult, to_canonical_json

__all__ = [
    "Experiment",
    "ExperimentRunner",
    "METRICS_SCHEMA",
    "ResultCache",
    "RunResult",
    "TaskContext",
    "task_seed",
    "to_canonical_json",
]
