"""On-disk memoization of completed experiment tasks.

Task results are pure functions of ``(experiment, task, context,
code-version)``, so re-running a bench suite only pays for what changed.
Each completed task is one small JSON file under the cache directory,
keyed by a SHA-256 of the identifying tuple; the package version is part
of the key so upgrading the code invalidates stale results wholesale.

The cache is safe under concurrent writers (atomic rename) and safe to
delete at any time (``make clean`` removes it).
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Optional

from .. import __version__

__all__ = ["ResultCache", "stable_floats"]


def stable_floats(value, places: int = 6):
    """Canonical float formatting for result documents.

    Rounds every float to ``places`` decimals and collapses ``-0.0`` to
    ``0.0``, recursively, so a metrics dict serializes to the same bytes
    no matter which process produced it or whether it round-tripped
    through the cache.  Shard merge determinism depends on this: two
    workers computing the same point must publish byte-identical
    documents, and an aggregate computed from cached entries must equal
    one computed from fresh results.
    """
    if isinstance(value, float):
        rounded = round(value, places)
        return 0.0 if rounded == 0.0 else rounded
    if isinstance(value, dict):
        return {key: stable_floats(item, places)
                for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [stable_floats(item, places) for item in value]
    return value


class ResultCache:
    """A directory of memoized task results."""

    def __init__(self, root: Path):
        self.root = Path(root)
        self.hits = 0
        self.misses = 0

    @staticmethod
    def task_key(experiment_id: str, task_name: str, ctx_key: dict,
                 schema: str = "", *, quick: Optional[bool] = None) -> str:
        """Stable digest identifying one task execution.

        ``schema`` is the metrics schema the caller will store under the
        key: bumping the document schema must invalidate cached entries,
        otherwise stale results of the old shape would be replayed into
        new documents.

        ``quick`` is folded into the key as a first-class field so a
        quick-suite (scaled-down) result can never be replayed into a
        full-scale document — even if a caller builds ``ctx_key`` by hand
        and forgets the flag.  When not passed explicitly it is recovered
        from ``ctx_key``.
        """
        if quick is None:
            quick = bool(ctx_key.get("quick", False))
        ident = json.dumps(
            {
                "experiment": experiment_id,
                "task": task_name,
                "ctx": ctx_key,
                "quick": bool(quick),
                "schema": schema,
                "version": __version__,
            },
            sort_keys=True,
        )
        return hashlib.sha256(ident.encode()).hexdigest()[:24]

    def counters(self) -> dict:
        """Hit/miss accounting as a JSON-ready dict (profiles, stats)."""
        return {"hits": self.hits, "misses": self.misses}

    def _path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def get(self, key: str) -> Optional[dict]:
        path = self._path(key)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                payload = json.load(fh)
        except (OSError, ValueError):
            self.misses += 1
            return None
        # Entries written before the payload carried a "value" field are
        # unreadable by construction: treat them as misses, not as data.
        if "value" not in payload:
            self.misses += 1
            return None
        self.hits += 1
        return payload["value"]

    def put(self, key: str, value: dict) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        # Canonical on-disk form: sorted keys below, stable floats here.
        # Producers already emit rounded floats, so this is normally the
        # identity — it exists so no writer can introduce entries whose
        # replay differs from a fresh execution by float formatting.
        payload = {"key": key, "value": stable_floats(value)}
        # Atomic publish: never expose a half-written JSON file.
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(payload, fh, sort_keys=True)
            os.replace(tmp, self._path(key))
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
