"""Wall-clock regression gate for the benchmark suite.

``python -m repro.runner.profile_gate --profile NEW --baseline OLD``
compares two runner profile documents (the ``*_profile.json`` written
next to every metrics document) and exits non-zero when the fresh run's
total wall exceeds the baseline by more than ``--tolerance`` (default
25%).  CI runs it after a fresh-cache ``make bench-quick`` against the
committed profile, so a change that quietly slows the suite down fails
the build with the per-task deltas that caused it.

Only fully executed runs are comparable: a profile whose cache section
shows hits replayed some tasks in ~0s and would pass vacuously, so the
gate rejects it.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

__all__ = ["compare_profiles", "main"]


def compare_profiles(profile: dict, baseline: dict,
                     tolerance: float) -> Sequence[str]:
    """Return the list of failure messages (empty when the gate passes)."""
    problems = []
    hits = profile.get("cache", {}).get("hits", 0)
    if hits:
        problems.append(
            f"profile under test replayed {hits} task(s) from cache; "
            "the gate needs a fresh-cache run"
        )
    wall = profile.get("wall_seconds")
    base_wall = baseline.get("wall_seconds")
    if wall is None or base_wall is None:
        problems.append("both documents need a wall_seconds field")
        return problems
    budget = base_wall * (1.0 + tolerance)
    if wall > budget:
        problems.append(
            f"suite wall {wall:.3f}s exceeds {budget:.3f}s "
            f"(baseline {base_wall:.3f}s + {tolerance:.0%})"
        )
        new_tasks = profile.get("task_wall_seconds", {})
        old_tasks = baseline.get("task_wall_seconds", {})
        regressions = sorted(
            ((task, new_tasks[task], old_tasks.get(task, 0.0))
             for task in new_tasks),
            key=lambda item: item[2] - item[1],
        )[:5]
        for task, new_wall, old_wall in regressions:
            problems.append(
                f"  {task}: {old_wall:.3f}s -> {new_wall:.3f}s"
            )
    return problems


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.runner.profile_gate",
        description="Fail when a fresh benchmark profile regressed past "
                    "the committed baseline's wall-time budget.",
    )
    parser.add_argument("--profile", required=True,
                        help="profile JSON of the run under test")
    parser.add_argument("--baseline", required=True,
                        help="committed baseline profile JSON")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed fractional slowdown (default 0.25)")
    args = parser.parse_args(argv)
    with open(args.profile, encoding="utf-8") as fh:
        profile = json.load(fh)
    with open(args.baseline, encoding="utf-8") as fh:
        baseline = json.load(fh)
    problems = compare_profiles(profile, baseline, args.tolerance)
    if problems:
        for problem in problems:
            print(f"profile-gate: {problem}", file=sys.stderr)
        return 1
    print(
        f"profile-gate: ok — wall {profile['wall_seconds']:.3f}s within "
        f"{args.tolerance:.0%} of baseline "
        f"{baseline['wall_seconds']:.3f}s"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
