"""Shared configuration and helpers for the experiment registry.

The standard simulated SoC every overhead experiment uses (4 KiB 2-way
cache, 32-byte lines, 40-cycle external memory), plus the small utilities
the ported benches shared by copy-paste before the registry existed.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, List

from ...analysis import OverheadResult, measure_overhead
from ...core.registry import DEFAULT_KEYS, make_engine
from ...sim import CacheConfig, MemoryConfig
from ...traces.trace import Access

__all__ = [
    "KEY16", "KEY24", "CACHE", "MEM", "N_ACCESSES",
    "clamp", "engine_factory", "measure", "overhead_metrics",
]

KEY16 = DEFAULT_KEYS[16]
KEY24 = DEFAULT_KEYS[24]

#: The standard simulated SoC for overhead measurements.
CACHE = CacheConfig(size=4096, line_size=32, associativity=2)
MEM = MemoryConfig(size=1 << 21, latency=40)

#: Standard trace length (tasks scale it via ``ctx.n(N_ACCESSES)``).
N_ACCESSES = 4000


def clamp(trace: Iterable[Access], size: int) -> List[Access]:
    """Clamp trace addresses into a ``size``-byte image."""
    return [type(a)(a.kind, a.addr % size, a.size) for a in trace]


def engine_factory(name: str, **params: Any) -> Callable[[], Any]:
    """A fresh-engine factory for ``measure_overhead`` (timing-only)."""
    return lambda: make_engine(name, functional=False, **params)


def measure(name: str, trace, *, engine_params: dict = None,
            **kwargs: Any) -> OverheadResult:
    """``measure_overhead`` against the registry, with standard configs."""
    kwargs.setdefault("cache_config", CACHE)
    kwargs.setdefault("mem_config", MEM)
    return measure_overhead(
        engine_factory(name, **(engine_params or {})), trace, **kwargs
    )


def overhead_metrics(result: OverheadResult) -> dict:
    """The standard structured block for one overhead measurement."""
    secured = result.secured
    return {
        "overhead": round(result.overhead, 6),
        "cycles": secured.cycles,
        "baseline_cycles": result.baseline.cycles,
        "accesses": secured.accesses,
        "cache_hit_rate": round(1.0 - secured.miss_rate, 6),
        "baseline_miss_rate": round(result.baseline.miss_rate, 6),
        "bus_transactions": secured.bus_transactions,
        "bus_bytes": secured.bus_bytes,
        "bytes_enciphered": secured.bytes_enciphered,
        "rmw_operations": secured.rmw_operations,
    }
