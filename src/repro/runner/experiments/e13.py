"""E13 — Figure 8 / §4: compression before encryption.

Paper claims reproduced:
* CodePack-class code compression: "an increase of memory density of 35%"
  — measured from the packed image;
* "The performance impact is claimed to be about +/- 10% (depends on the
  type of memory used)" — the sign flips across the memory-latency sweep;
* "The compression has to be done before ciphering, if not, compression
  will have a very poor ratio due to the strong stochastic properties of
  encrypted data" — compress-then-encrypt vs encrypt-then-compress ratios;
* "compression increases the message entropy" — entropy columns.
"""

from __future__ import annotations

from ...analysis import format_percent, format_table
from ...compression import CodePack, lz77_compress, shannon_entropy
from ...crypto import AES, CTR
from ...sim import CacheConfig, MemoryConfig
from ...traces import sequential_code, synthetic_code_image
from ..base import Experiment, TaskContext
from .common import KEY16, N_ACCESSES, measure, overhead_metrics

CACHE = CacheConfig(size=1024, line_size=32, associativity=2)
IMAGE_SIZE = 32 * 1024

#: "Depends on the type of memory used": (label, latency, bus bytes/beat,
#: cycles/beat) from fast wide SDR down to slow narrow ROM-class memory.
MEMORY_TYPES = (
    ("fast wide (8B/beat)", 10, 8, 1),
    ("moderate (4B/beat)", 40, 4, 1),
    ("slow narrow (2B, 2cyc)", 40, 2, 2),
    ("serial ROM (1B, 4cyc)", 60, 1, 4),
)


def task_density_ordering(ctx: TaskContext) -> dict:
    image = synthetic_code_image(size=IMAGE_SIZE)
    compressed = CodePack(block_size=32).compress_image(image)
    ciphertext = CTR(AES(KEY16), nonce=bytes(12)).encrypt(image)

    compress_then_encrypt = len(lz77_compress(image))  # encrypt keeps size
    encrypt_then_compress = len(lz77_compress(ciphertext))
    return {
        "codepack_ratio": round(compressed.ratio, 6),
        "density_gain": round(compressed.density_gain, 6),
        "plain_entropy": round(shannon_entropy(image), 6),
        "compressed_entropy":
            round(shannon_entropy(b"".join(compressed.blocks)), 6),
        "cipher_entropy": round(shannon_entropy(ciphertext), 6),
        "cte_ratio": round(compress_then_encrypt / len(image), 6),
        "etc_ratio": round(encrypt_then_compress / len(ciphertext), 6),
    }


def task_memory_sweep(ctx: TaskContext) -> dict:
    image = synthetic_code_image(size=IMAGE_SIZE)
    trace = sequential_code(ctx.n(N_ACCESSES), code_size=IMAGE_SIZE)
    rows = []
    for label, latency, width, cpb in MEMORY_TYPES:
        mem = MemoryConfig(size=1 << 20, latency=latency, bus_width=width,
                           cycles_per_beat=cpb)
        result = measure("compress", trace, image=image,
                         cache_config=CACHE, mem_config=mem)
        rows.append({"memory": label, **overhead_metrics(result)})
    return {"rows": rows}


def render(results: dict) -> str:
    stats = results["density-ordering"]
    density = format_table(
        ["metric", "value"],
        [
            ["CodePack compression ratio", f"{stats['codepack_ratio']:.2f}"],
            ["memory density gain", format_percent(stats["density_gain"])],
            ["plain image entropy (bits/B)",
             f"{stats['plain_entropy']:.2f}"],
            ["compressed entropy", f"{stats['compressed_entropy']:.2f}"],
            ["ciphertext entropy", f"{stats['cipher_entropy']:.2f}"],
            ["compress-then-encrypt size ratio",
             f"{stats['cte_ratio']:.2f}"],
            ["encrypt-then-compress size ratio",
             f"{stats['etc_ratio']:.2f}"],
        ],
        title="E13a: density, entropy and the ordering rule (survey Fig. 8)",
    )
    rows = results["memory-sweep"]["rows"]
    sweep = format_table(
        ["memory type", "compress+encrypt overhead"],
        [[r["memory"], format_percent(r["overhead"])] for r in rows],
        title="E13b: the '+/- 10%' — sign depends on the type of memory "
              "(survey §4)",
    )
    return density + "\n\n" + sweep


def check(results: dict) -> None:
    stats = results["density-ordering"]
    # The survey's 35% density figure: our code-like image lands nearby.
    assert stats["density_gain"] > 0.20
    # Compression raises entropy toward the cipher's.
    assert stats["compressed_entropy"] > stats["plain_entropy"]
    # Ordering: compressing ciphertext achieves (essentially) nothing.
    assert stats["etc_ratio"] > 0.95
    assert stats["cte_ratio"] < 0.7
    overheads = [r["overhead"] for r in results["memory-sweep"]["rows"]]
    # The sweep crosses zero: a loss on a fast wide bus (the decoder can't
    # hide behind the few saved beats), a win on transfer-bound memory.
    assert overheads[0] > 0.0       # fast wide: compression costs
    assert overheads[-1] < 0.0      # slow narrow: compression pays
    # Monotone: the narrower/slower the transfer, the better compression
    # looks.
    assert overheads == sorted(overheads, reverse=True)


EXPERIMENT = Experiment(
    id="e13",
    title="Compression before encryption",
    section="§4 / Fig. 8",
    tasks={"density-ordering": task_density_ordering,
           "memory-sweep": task_memory_sweep},
    render=render,
    check=check,
)
