"""E04 — §2.2: the smaller-than-block write penalty.

Paper claim reproduced: "The writing operation of a data smaller than the
ciphered block size is penalizing because implies the following steps:
read the block from memory, decipher it, modify the corresponding sequence
into the block, re-cipher it, write it back in memory."

Sweeps store size below and at the cipher block size on a
write-through/no-allocate system (where stores hit memory directly) and
reports the per-store cost inflation, plus the contrast cases: a
byte-granular engine (DS5002FP) and the write-back cache that absorbs the
problem.
"""

from __future__ import annotations

from ...analysis import format_table
from ...sim import CacheConfig, MemoryConfig, WritePolicy
from ...traces import write_burst
from ..base import Experiment, TaskContext
from .common import measure, overhead_metrics

N_STORES = 300
WT_CACHE = CacheConfig(
    size=1024, line_size=32, associativity=2,
    write_policy=WritePolicy.WRITE_THROUGH, write_allocate=False,
)
WB_CACHE = CacheConfig(size=1024, line_size=32, associativity=2)
MEM = MemoryConfig(size=1 << 20, latency=40)


def _sweep(ctx: TaskContext, engine_name: str) -> dict:
    sizes = (4, 8, 16) if ctx.quick else (1, 2, 4, 8, 16)
    n_stores = ctx.n(N_STORES, quick=N_STORES)  # cheap: keep full scale
    rows = []
    for size in sizes:
        trace = write_burst(n_stores, base=0, write_size=size, stride=64)
        result = measure(
            engine_name, trace,
            cache_config=WT_CACHE, mem_config=MEM, write_buffer=False,
        )
        rows.append({
            "size": size,
            "cycles_per_store": round(result.secured.cycles / n_stores, 3),
            **overhead_metrics(result),
        })
    return {"n_stores": n_stores, "rows": rows}


def task_ds5240(ctx: TaskContext) -> dict:
    return _sweep(ctx, "ds5240")


def task_xom(ctx: TaskContext) -> dict:
    return _sweep(ctx, "xom")


def task_ds5002fp(ctx: TaskContext) -> dict:
    return _sweep(ctx, "ds5002fp")


def task_write_back_absorbs(ctx: TaskContext) -> dict:
    """With write-allocate + write-back, the line fetch doubles as the
    'read the block' step and the penalty folds into normal miss traffic."""
    trace = write_burst(N_STORES, base=0, write_size=4, stride=64)
    result = measure("ds5240", trace, cache_config=WB_CACHE, mem_config=MEM)
    return overhead_metrics(result)


_LABELS = {
    "ds5240-sweep": "ds5240 (8B block)",
    "xom-sweep": "xom (16B block)",
    "ds5002fp-sweep": "ds5002fp (1B block)",
}


def render(results: dict) -> str:
    parts = []
    for task, label in _LABELS.items():
        rows = results[task]["rows"]
        parts.append(format_table(
            ["store size (B)", "overhead", "RMW ops", "cycles/store"],
            [[r["size"], f"{r['overhead'] * 100:+.0f}%",
              r["rmw_operations"], f"{r['cycles_per_store']:.0f}"]
             for r in rows],
            title=f"E04: sub-block write penalty — {label} (survey §2.2)",
        ))
    wb = results["write-back-absorbs"]
    parts.append(format_table(
        ["metric", "value"],
        [["RMW ops with write-back cache", wb["rmw_operations"]]],
        title="E04: a write-back cache absorbs the penalty",
    ))
    return "\n\n".join(parts)


def check(results: dict) -> None:
    n_stores = results["ds5240-sweep"]["n_stores"]
    ds5240 = {r["size"]: r for r in results["ds5240-sweep"]["rows"]}
    xom = {r["size"]: r for r in results["xom-sweep"]["rows"]}
    byte_engine = results["ds5002fp-sweep"]["rows"]

    # Sub-block stores trigger the five-step RMW; block-aligned ones don't.
    assert ds5240[4]["rmw_operations"] == n_stores
    assert ds5240[8]["rmw_operations"] == 0
    assert xom[8]["rmw_operations"] == n_stores
    assert xom[16]["rmw_operations"] == 0
    # The RMW inflates the per-store cost substantially.
    assert ds5240[4]["cycles_per_store"] > 1.7 * ds5240[8]["cycles_per_store"]
    # A byte-granular cipher never pays it.
    assert all(r["rmw_operations"] == 0 for r in byte_engine)
    # The write-back cache absorbs it entirely.
    assert results["write-back-absorbs"]["rmw_operations"] == 0


EXPERIMENT = Experiment(
    id="e04",
    title="Sub-block write penalty (read-modify-write)",
    section="§2.2",
    tasks={
        "ds5240-sweep": task_ds5240,
        "xom-sweep": task_xom,
        "ds5002fp-sweep": task_ds5002fp,
        "write-back-absorbs": task_write_back_absorbs,
    },
    render=render,
    check=check,
)
