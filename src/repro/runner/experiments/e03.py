"""E03 — §2.2: ECB's determinism leak vs CBC's random-access problem.

Paper claims reproduced:
* ECB: "a same data will be ciphered to the same value; which is the main
  security weakness of that mode" — measured as block-collision rate and
  the ECB distinguisher on a code-like image;
* CBC: "provides improved security ... Its use proves limited in a
  processor-memory system due to the random data access problem (JUMP
  instructions)" — measured as whole-image-chained read cost under
  sequential vs branchy fetch streams.
"""

from __future__ import annotations

from ...analysis import format_percent, format_table
from ...attacks import analyze_ciphertext, ecb_distinguisher
from ...crypto import CBC, ECB, TripleDES
from ...sim import CacheConfig
from ...traces import make_workload, synthetic_code_image
from ..base import Experiment, TaskContext
from .common import KEY24, N_ACCESSES, clamp, measure, overhead_metrics


def task_ecb_leak(ctx: TaskContext) -> dict:
    image = synthetic_code_image(size=ctx.n(32 * 1024, quick=8 * 1024))
    tdes = TripleDES(KEY24)
    ecb_ct = ECB(tdes).encrypt(image)
    cbc_ct = CBC(tdes, bytes(8)).encrypt(image)
    rows = []
    for label, data in (("plaintext", image), ("ECB", ecb_ct),
                        ("CBC", cbc_ct)):
        analysis = analyze_ciphertext(data, block_size=8)
        rows.append({
            "mode": label,
            "entropy": round(analysis.entropy_bits_per_byte, 6),
            "collisions": round(analysis.block_collision_rate, 6),
            "distinguishable": ecb_distinguisher(data, block_size=8),
        })
    return {"rows": rows}


def task_cbc_random_access(ctx: TaskContext) -> dict:
    """Whole-image CBC chaining vs per-JUMP random access."""
    cache = CacheConfig(size=1024, line_size=32, associativity=2)
    image = bytes(16 * 1024)
    rows = []
    for name in ("sequential", "branchy"):
        trace = clamp(make_workload(name, n=ctx.n(N_ACCESSES)), 16 * 1024)
        result = measure(
            "gi", trace,
            engine_params={"region_size": 4096, "authenticate": False},
            image=image, cache_config=cache,
        )
        rows.append({"workload": name, **overhead_metrics(result)})
    return {"rows": rows}


def render(results: dict) -> str:
    sec = results["ecb-leak"]["rows"]
    security = format_table(
        ["mode", "entropy (bits/B)", "block collision rate", "ECB leak?"],
        [[r["mode"], f"{r['entropy']:.2f}", f"{r['collisions']:.3f}",
          r["distinguishable"]] for r in sec],
        title="E03a: ECB determinism leak on a code-like image (survey §2.2)",
    )
    perf = results["cbc-random-access"]["rows"]
    performance = format_table(
        ["workload", "chained-CBC overhead"],
        [[r["workload"], format_percent(r["overhead"])] for r in perf],
        title="E03b: whole-region CBC vs access pattern (survey §2.2)",
    )
    return security + "\n\n" + performance


def check(results: dict) -> None:
    by_mode = {r["mode"]: r for r in results["ecb-leak"]["rows"]}
    assert by_mode["ECB"]["distinguishable"]
    assert not by_mode["CBC"]["distinguishable"]
    assert by_mode["ECB"]["collisions"] > 10 * max(
        by_mode["CBC"]["collisions"], 1e-6
    )
    by_name = {r["workload"]: r["overhead"]
               for r in results["cbc-random-access"]["rows"]}
    # Random access (branchy) pays dramatically more than sequential.
    assert by_name["branchy"] > 1.5 * by_name["sequential"]
    assert by_name["branchy"] > 1.0  # "unacceptable" territory


EXPERIMENT = Experiment(
    id="e03",
    title="ECB determinism leak vs CBC random-access penalty",
    section="§2.2",
    tasks={"ecb-leak": task_ecb_leak,
           "cbc-random-access": task_cbc_random_access},
    render=render,
    check=check,
)
