"""E12 — Figure 7 / §4: EDU placement, CPU-cache vs cache-memory.

Paper claims reproduced:
* 7b stored-keystream variant needs "an on-chip memory equivalent to the
  cache memory in term of size" — §5 calls the doubling unaffordable;
* 7b generate-on-demand "implies important performance loss" (the
  generator latency lands on every cache access);
* "this scheme seems to provide no benefit in term of performance when
  compared to a stream cipher located between cache memory and memory
  controller."
"""

from __future__ import annotations

from ...analysis import format_gates, format_percent, format_table
from ...core import compare_placements
from ...sim import CacheConfig, MemoryConfig, sram_gates
from ...traces import make_workload
from ..base import Experiment, TaskContext
from .common import KEY16, N_ACCESSES

CACHE = CacheConfig(size=8192, line_size=32, associativity=2)
MEM = MemoryConfig(size=1 << 21, latency=40)


def task_placement(ctx: TaskContext) -> dict:
    trace = make_workload("mixed", n=ctx.n(N_ACCESSES))
    comparison = compare_placements(trace, key=KEY16, cache_config=CACHE,
                                    mem_config=MEM)
    overheads = comparison.overheads()
    return {
        "cache_size": CACHE.size,
        "overheads": {k: round(v, 6) for k, v in overheads.items()},
        "areas": dict(comparison.areas),
        "sram_premium_expected": sram_gates(CACHE.size),
    }


def task_cache_sensitivity(ctx: TaskContext) -> dict:
    """The per-access tax of 7b scales with hit volume: the more the cache
    does its job, the worse 7b compares."""
    rows = []
    for size in (1024, 4096, 16384):
        trace = make_workload("data-local", n=ctx.n(N_ACCESSES))
        comparison = compare_placements(
            trace, key=KEY16,
            cache_config=CacheConfig(size=size, line_size=32,
                                     associativity=2),
            mem_config=MEM,
        )
        o = comparison.overheads()
        rows.append({
            "cache": size,
            "edu_7a": round(o["cache-memory (7a)"], 6),
            "edu_7b": round(o["cpu-cache stored pad (7b)"], 6),
        })
    return {"rows": rows}


def render(results: dict) -> str:
    p = results["placement"]
    placement = format_table(
        ["design point", "overhead", "engine area"],
        [[name, format_percent(p["overheads"][name]),
          format_gates(p["areas"][name])] for name in p["overheads"]],
        title="E12: EDU placement (survey Fig. 7 / §4)",
    )
    rows = results["cache-sensitivity"]["rows"]
    sensitivity = format_table(
        ["cache size", "7a overhead", "7b (stored) overhead"],
        [[r["cache"], format_percent(r["edu_7a"]),
          format_percent(r["edu_7b"])] for r in rows],
        title="E12b: placement vs cache size",
    )
    return placement + "\n\n" + sensitivity


def check(results: dict) -> None:
    p = results["placement"]
    overheads = p["overheads"]
    # No performance benefit from the CPU-cache placement...
    assert overheads["cpu-cache stored pad (7b)"] >= \
        overheads["cache-memory (7a)"] - 1e-9
    # ...and the on-demand variant is far worse.
    assert overheads["cpu-cache generated pad (7b)"] > \
        5 * max(overheads["cache-memory (7a)"], 0.001)
    # The stored variant pays an SRAM bill equal to the whole cache.
    premium = (p["areas"]["cpu-cache stored pad (7b)"]
               - p["areas"]["cpu-cache generated pad (7b)"])
    assert premium == p["sram_premium_expected"]
    rows = results["cache-sensitivity"]["rows"]
    # The 7b/7a *relative* gap widens as hits dominate.
    ratios = [(r["edu_7b"] + 1e-9) / (r["edu_7a"] + 1e-9) for r in rows]
    assert ratios[-1] > ratios[0]


EXPERIMENT = Experiment(
    id="e12",
    title="EDU placement: CPU-cache vs cache-memory",
    section="§4 / Fig. 7",
    tasks={"placement": task_placement,
           "cache-sensitivity": task_cache_sensitivity},
    render=render,
    check=check,
)
