"""E02 — Figure 2a/2b / §2.2: stream vs block cipher on the miss path.

Paper claims reproduced:
* "stream cipher seems to be more suitable in term of performance: the key
  stream generation can be parallelised with external data fetch";
* "the shortcoming of block cipher cryptosystems is that deciphering cannot
  start until a complete block has been received";
* ablation: pad-ahead depth of the stream engine.
"""

from __future__ import annotations

from ...analysis import ascii_plot, format_percent, format_table
from ...sim import MemoryConfig
from ...traces import make_workload
from ..base import Experiment, TaskContext
from .common import CACHE, N_ACCESSES, measure, overhead_metrics


def task_latency_sweep(ctx: TaskContext) -> dict:
    latencies = (5, 40, 160) if ctx.quick else (5, 20, 40, 80, 160)
    trace = make_workload("branchy", n=ctx.n(N_ACCESSES))
    rows = []
    for latency in latencies:
        mem = MemoryConfig(size=1 << 21, latency=latency)
        stream = measure("stream", trace,
                         engine_params={"pad_ahead_depth": 2},
                         mem_config=mem)
        block = measure("xom", trace, mem_config=mem)
        rows.append({
            "latency": latency,
            "stream": overhead_metrics(stream),
            "block": overhead_metrics(block),
        })
    return {"rows": rows}


def task_pad_ahead(ctx: TaskContext) -> dict:
    # Fast memory: the fetch is too short to hide pad generation, so the
    # precomputed pads are what keeps the miss path clean.
    depths = (0, 1, 8) if ctx.quick else (0, 1, 2, 4, 8)
    fast_mem = MemoryConfig(size=1 << 21, latency=5)
    trace = make_workload("sequential", n=ctx.n(N_ACCESSES))
    rows = []
    for depth in depths:
        result = measure(
            "stream", trace,
            engine_params={"pad_ahead_depth": depth,
                           "pad_cache_lines": max(2, 2 * depth)},
            mem_config=fast_mem,
        )
        rows.append({"depth": depth, **overhead_metrics(result)})
    return {"rows": rows}


def render(results: dict) -> str:
    sweep = results["latency-sweep"]["rows"]
    table = format_table(
        ["memory latency", "stream overhead", "block overhead"],
        [[r["latency"], format_percent(r["stream"]["overhead"]),
          format_percent(r["block"]["overhead"])] for r in sweep],
        title="E02: stream vs block cipher overhead vs memory latency "
              "(survey Fig. 2)",
    )
    plot = ascii_plot(
        {"stream": [(r["latency"], 100 * r["stream"]["overhead"])
                    for r in sweep],
         "block": [(r["latency"], 100 * r["block"]["overhead"])
                   for r in sweep]},
        title="E02 figure: overhead (%) vs memory latency",
        x_label="memory latency (cycles)", y_label="%",
    )
    pads = results["pad-ahead"]["rows"]
    ablation = format_table(
        ["pad-ahead depth", "stream overhead (sequential, fast memory)"],
        [[r["depth"], format_percent(r["overhead"])] for r in pads],
        title="E02 ablation: pad-ahead depth",
    )
    return table + "\n" + plot + "\n\n" + ablation


def check(results: dict) -> None:
    sweep = results["latency-sweep"]["rows"]
    # Shape: block always worse than stream; stream stays small once the
    # fetch is slow enough to hide pad generation.
    for r in sweep:
        assert r["block"]["overhead"] > r["stream"]["overhead"]
    assert sweep[-1]["stream"]["overhead"] < 0.05
    pads = results["pad-ahead"]["rows"]
    # With fast memory the pads no longer hide behind the fetch: depth >= 1
    # must beat depth 0, and deeper never hurts on sequential code.
    assert pads[1]["overhead"] < pads[0]["overhead"]
    assert pads[-1]["overhead"] <= pads[1]["overhead"] + 1e-9


EXPERIMENT = Experiment(
    id="e02",
    title="Stream vs block cipher on the miss path",
    section="§2.2 / Fig. 2",
    tasks={"latency-sweep": task_latency_sweep, "pad-ahead": task_pad_ahead},
    render=render,
    check=check,
)
