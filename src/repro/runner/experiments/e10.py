"""E10 — §3 (XOM [13]): the pipelined AES and the latency-vs-system-cost
caveat.

Paper claims reproduced:
* "a pipelined AES block cipher as cipher unit which features a low latency
  of 14 latency cycles, while a throughput of one encrypted/decrypted data
  per clock cycle is claimed" — the microbenchmark rows;
* "taking into account only the latency doesn't inform about the overall
  system cost" — the same unit produces wildly different overheads across
  the workload suite, tracking miss rate rather than the constant 14.
"""

from __future__ import annotations

from ...analysis import format_percent, format_table
from ...sim import XOM_AES_PIPE, PipelinedUnit
from ...traces import WORKLOAD_NAMES, make_workload, sequential_code
from ..base import Experiment, TaskContext
from .common import N_ACCESSES, measure, overhead_metrics


def task_microbench(ctx: TaskContext) -> dict:
    rows = []
    for nblocks in (1, 2, 8, 32, 128):
        cycles = XOM_AES_PIPE.time_for(nblocks)
        rows.append({
            "blocks": nblocks,
            "cycles": cycles,
            "per_block": round(cycles / nblocks, 4),
        })
    return {"rows": rows}


def task_system(ctx: TaskContext) -> dict:
    # Full-length traces even in quick mode: the claim is about the spread
    # of overheads across workloads, and short traces compress it (cold
    # misses dominate every workload equally).
    n = N_ACCESSES
    workloads = {
        # Cache-resident loop: the engine is nearly invisible.
        "loop-resident": sequential_code(2 * n, code_size=2048),
        # Working set slightly over the cache: moderate miss traffic.
        "loop-spill": sequential_code(2 * n, code_size=8192),
    }
    workloads.update(
        (name, make_workload(name, n=n)) for name in WORKLOAD_NAMES
    )
    rows = []
    for name, trace in workloads.items():
        result = measure("xom", trace, workload=name)
        rows.append({"workload": name, **overhead_metrics(result)})
    return {"rows": rows}


def task_iterative_vs_pipelined(ctx: TaskContext) -> dict:
    """Ablation: the same AES algorithm without pipelining."""
    trace = make_workload("branchy", n=ctx.n(N_ACCESSES))
    iterative = PipelinedUnit("aes-iter", latency=11, initiation_interval=11)
    pipe = measure("xom", trace)
    iter_ = measure("xom", trace, engine_params={"unit": iterative})
    return {
        "pipelined": overhead_metrics(pipe),
        "iterative": overhead_metrics(iter_),
    }


def render(results: dict) -> str:
    parts = [format_table(
        ["blocks", "cycles", "cycles/block"],
        [[r["blocks"], r["cycles"], f"{r['per_block']:.2f}"]
         for r in results["microbench"]["rows"]],
        title="E10a: XOM pipelined AES unit (14-cycle latency, II=1)",
    )]
    parts.append(format_table(
        ["workload", "baseline miss rate", "overhead (same 14-cycle unit)"],
        [[r["workload"], f"{r['baseline_miss_rate']:.1%}",
          format_percent(r["overhead"])]
         for r in results["system"]["rows"]],
        title="E10b: one latency, many system costs (survey §3)",
    ))
    ab = results["iterative-vs-pipelined"]
    parts.append(format_table(
        ["unit", "overhead"],
        [["pipelined (II=1)", format_percent(ab["pipelined"]["overhead"])],
         ["iterative (II=11)", format_percent(ab["iterative"]["overhead"])]],
        title="E10c ablation: pipelining the AES core",
    ))
    return "\n\n".join(parts)


def check(results: dict) -> None:
    micro = results["microbench"]["rows"]
    assert micro[0]["cycles"] == 14                      # published latency
    assert micro[-1]["per_block"] < 1.2                  # ~1 block/cycle
    rows = results["system"]["rows"]
    overheads = [r["overhead"] for r in rows]
    assert max(overheads) > 4 * max(min(overheads), 1e-4)
    # Overhead tracks the miss rate, not the unit latency: the rank
    # correlation between the two columns must be strongly positive.
    miss = [r["baseline_miss_rate"] for r in rows]
    rank = lambda xs: {i: sorted(xs).index(x) for i, x in enumerate(xs)}
    rm, ro = rank(miss), rank(overheads)
    agreements = sum(
        1
        for i in range(len(rows))
        for j in range(i + 1, len(rows))
        if (rm[i] - rm[j]) * (ro[i] - ro[j]) > 0
    )
    pairs = len(rows) * (len(rows) - 1) // 2
    assert agreements / pairs > 0.7
    ab = results["iterative-vs-pipelined"]
    assert ab["iterative"]["overhead"] > ab["pipelined"]["overhead"]


EXPERIMENT = Experiment(
    id="e10",
    title="XOM pipelined AES; latency vs system cost",
    section="§3",
    tasks={
        "microbench": task_microbench,
        "system": task_system,
        "iterative-vs-pipelined": task_iterative_vs_pipelined,
    },
    render=render,
    check=check,
)
