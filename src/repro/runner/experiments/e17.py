"""E17 (extension) — the engine suite on *real* program traces.

The synthetic workload generators control miss rate and write mix
parametrically; these traces come from actually executing kernels (sort,
memcpy, memset, search, checksum) on the MCU model.  The experiment checks
that the survey-table orderings measured on synthetic workloads survive
contact with real instruction streams, and certifies every keystream
generator against the survey-era FIPS 140-1 battery.
"""

from __future__ import annotations

from ...analysis import fips_140_1, format_percent, format_table
from ...crypto import AES, CTR, DRBG, RC4
from ...crypto.lfsr import AlternatingStepGenerator, GeffeGenerator
from ...sim import CacheConfig, MemoryConfig
from ...traces import MCU_KERNELS, mcu_workload
from ..base import Experiment, TaskContext
from .common import KEY16, measure

CACHE = CacheConfig(size=512, line_size=32, associativity=2)
MEM = MemoryConfig(size=1 << 16, latency=40)

ENGINE_NAMES = ("stream", "xom", "aegis", "ds5240")


def task_kernel_grid(ctx: TaskContext) -> dict:
    rows = []
    for kernel in MCU_KERNELS:
        trace = mcu_workload(kernel, repeat=1 if ctx.quick else 3)
        row = {"kernel": kernel}
        for name in ENGINE_NAMES:
            row[name] = round(measure(
                name, trace, workload=kernel,
                cache_config=CACHE, mem_config=MEM,
            ).overhead, 6)
        rows.append(row)
    return {"rows": rows}


def task_fips(ctx: TaskContext) -> dict:
    sample = 2500
    taps = ((9, 5), (10, 7), (11, 9))
    streams = {
        "AES-CTR": CTR(AES(KEY16), nonce=bytes(12)).keystream(sample),
        "RC4": RC4(b"cert-key").keystream(sample),
        "Geffe combiner": GeffeGenerator(
            0x1F3, 0x2A5, 0x3B7, taps_a=taps[0], taps_b=taps[1],
            taps_c=taps[2],
        ).keystream(sample),
        "Alternating step": AlternatingStepGenerator(7, 77, 777)
        .keystream(sample),
        "repro DRBG": DRBG(2005).random_bytes(sample),
    }
    rows = []
    for label, stream in streams.items():
        r = fips_140_1(stream)
        rows.append({
            "generator": label,
            "passed": r.passed,
            "monobit_ones": r.monobit_ones,
            "poker_statistic": round(r.poker_statistic, 6),
            "longest_run": r.longest_run,
        })
    return {"rows": rows}


def render(results: dict) -> str:
    rows = results["kernel-grid"]["rows"]
    grid = format_table(
        ["kernel"] + list(ENGINE_NAMES),
        [[r["kernel"]] + [format_percent(r[name]) for name in ENGINE_NAMES]
         for r in rows],
        title="E17a: engine overhead on real MCU kernel traces",
    )
    frows = results["fips"]["rows"]
    fips = format_table(
        ["generator", "FIPS 140-1", "monobit ones", "poker", "longest run"],
        [[r["generator"], "PASS" if r["passed"] else "FAIL",
          r["monobit_ones"], f"{r['poker_statistic']:.1f}",
          r["longest_run"]] for r in frows],
        title="E17b: survey-era certification battery on the keystream "
              "generators",
    )
    return grid + "\n\n" + fips


def check(results: dict) -> None:
    # The synthetic-suite ordering holds on real programs, per kernel:
    # stream <= xom <= aegis, and the iterative-DES engine trails them.
    for r in results["kernel-grid"]["rows"]:
        assert r["stream"] <= r["xom"] + 1e-9, r["kernel"]
        assert r["xom"] <= r["aegis"] + 1e-9, r["kernel"]
        assert r["ds5240"] >= r["xom"], r["kernel"]
    # The battery is necessary, not sufficient: the Geffe combiner passes
    # here and falls to the correlation attack in E15d.
    assert all(r["passed"] for r in results["fips"]["rows"])


EXPERIMENT = Experiment(
    id="e17",
    title="Engine suite on real MCU kernel traces; FIPS battery",
    section="extension of §3/§4",
    tasks={"kernel-grid": task_kernel_grid, "fips": task_fips},
    render=render,
    check=check,
)
