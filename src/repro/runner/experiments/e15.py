"""E15 (extension) — §5 future work: integrity against instruction
modification.

"In future exploration, it might also be relevant to take into account the
problem of integrity, to thwart attacks based on the modification of the
fetched instructions."

The survey stops there; this experiment builds the obvious next engine and
measures what the sentence costs:

* per-line MAC tags detect modified/spoofed/relocated instructions;
* anti-replay needs on-chip version state — the versioned/unversioned
  ablation shows the replay hole and its price (SRAM + nothing on the
  miss path);
* performance and memory overhead of the shield on top of a
  confidentiality engine.

Also includes the keystream-quality experiment §4 implies: the Geffe
correlation attack recovering a cheap combiner's full state from observed
keystream.
"""

from __future__ import annotations

from ...analysis import format_gates, format_percent, format_table
from ...attacks import geffe_correlation_attack
from ...core import TamperDetected
from ...core.engine import MemoryPort
from ...core.registry import make_engine
from ...crypto.lfsr import GeffeGenerator
from ...sim import Bus, CacheConfig, MainMemory, MemoryConfig, SecureSystem
from ...traces import make_workload, sequential_code
from ..base import Experiment, TaskContext
from .common import MEM, N_ACCESSES, measure, overhead_metrics

TAG_BASE = 1 << 20


def task_overhead(ctx: TaskContext) -> dict:
    rows = []
    for name in ("sequential", "mixed", "write-heavy"):
        trace = make_workload(name, n=ctx.n(N_ACCESSES))
        bare = measure("xom", trace)
        shielded = measure("integrity-xom", trace)
        rows.append({
            "workload": name,
            "bare": overhead_metrics(bare),
            "shielded": overhead_metrics(shielded),
        })
    shield = make_engine("integrity-xom", functional=False)
    return {
        "rows": rows,
        "tag_overhead_fraction": shield.tag_overhead_fraction(32),
        "area": shield.area().total,
    }


def task_tamper_replay(ctx: TaskContext) -> dict:
    def run_case(versioned: bool) -> bool:
        engine = make_engine("integrity-stream", versioned=versioned)
        port = MemoryPort(MainMemory(MemoryConfig(size=1 << 21)), Bus())
        engine.install_image(port.memory, 0, bytes(64))
        engine.write_line(port, 0, b"v1-data-" * 4)
        stale_line = port.memory.dump(0, 32)
        stale_tag = port.memory.dump(engine._tag_addr(0, 32), 8)
        engine.write_line(port, 0, b"v2-data-" * 4)
        port.memory.load_image(0, stale_line)
        port.memory.load_image(engine._tag_addr(0, 32), stale_tag)
        engine._tag_cache.clear()
        try:
            engine.fill_line(port, 0, 32)
            return False
        except TamperDetected:
            return True

    versioned_area = make_engine("integrity-stream", functional=False,
                                 versioned=True).area().total
    bare_area = make_engine("integrity-stream", functional=False,
                            versioned=False).area().total
    return {
        "versioned": run_case(True),
        "unversioned": run_case(False),
        "versioned_area": versioned_area,
        "unversioned_area": bare_area,
    }


def task_merkle_vs_versions(ctx: TaskContext) -> dict:
    """Same security goal, two state budgets: per-line on-chip counters vs
    a 16-byte root + hash tree."""
    region = 32 * 1024
    trace = sequential_code(ctx.n(N_ACCESSES), code_size=region)
    cache = CacheConfig(size=2048, line_size=32, associativity=2)
    n_lines = region // 32
    rows = []

    def run(engine, label, onchip_bytes, mem_overhead):
        system = SecureSystem(engine=engine, cache_config=cache,
                              mem_config=MEM)
        system.install_image(0, bytes(region))
        report = system.run(list(trace))
        baseline = SecureSystem(cache_config=cache, mem_config=MEM)
        baseline.install_image(0, bytes(region))
        base_report = baseline.run(list(trace))
        rows.append({
            "design": label,
            "overhead": round(report.overhead_vs(base_report), 6),
            "onchip_bytes": onchip_bytes,
            "mem_overhead": mem_overhead,
        })

    run(
        make_engine("integrity-stream", functional=False, versioned=True,
                    tracked_lines=n_lines),
        "MAC tags + on-chip version table",
        onchip_bytes=4 * n_lines,
        mem_overhead=8 / 32,
    )
    run(
        make_engine("merkle-stream", functional=False, node_cache_size=64),
        "Merkle tree (root on chip)",
        onchip_bytes=16 + 64 * 16,
        mem_overhead=1.0,
    )
    return {"rows": rows}


def task_keystream(ctx: TaskContext) -> dict:
    """§4's 'sufficiently random to be secure', enforced: a cheap Geffe
    combiner's full state falls to correlation analysis."""
    taps = ((9, 5), (10, 7), (11, 9))
    gen = GeffeGenerator(0x101, 0x202, 0x303, taps_a=taps[0],
                         taps_b=taps[1], taps_c=taps[2])
    ks = [gen.step() for _ in range(ctx.n(300, quick=300))]
    result = geffe_correlation_attack(ks, *taps)
    return {
        "succeeded": result.succeeded,
        "candidates_tested": result.candidates_tested,
        "naive_keyspace": result.naive_keyspace,
        "speedup": round(result.speedup, 3),
    }


def render(results: dict) -> str:
    o = results["overhead"]
    parts = [format_table(
        ["workload", "XOM alone", "XOM + integrity shield"],
        [[r["workload"], format_percent(r["bare"]["overhead"]),
          format_percent(r["shielded"]["overhead"])] for r in o["rows"]],
        title="E15a: the cost of §5's integrity sentence",
    )]
    parts.append(format_table(
        ["cost", "value"],
        [["external memory for tags",
          format_percent(o["tag_overhead_fraction"], signed=False)],
         ["engine area", format_gates(o["area"])]],
        title="E15b: integrity space costs",
    ))
    t = results["tamper-replay"]
    parts.append(format_table(
        ["design", "replay detected?", "area"],
        [["versioned tags (on-chip counters)", t["versioned"],
          format_gates(t["versioned_area"])],
         ["unversioned tags", t["unversioned"],
          format_gates(t["unversioned_area"])]],
        title="E15c: anti-replay needs on-chip freshness state",
    ))
    k = results["keystream"]
    parts.append(format_table(
        ["metric", "value"],
        [["seeds recovered", k["succeeded"]],
         ["candidates tested", k["candidates_tested"]],
         ["naive keyspace", f"{k['naive_keyspace']:,}"],
         ["divide-and-conquer speedup", f"{k['speedup']:,.0f}x"]],
        title="E15d: correlation attack on a cheap keystream generator",
    ))
    m = results["merkle-vs-versions"]["rows"]
    parts.append(format_table(
        ["anti-replay design", "overhead", "on-chip state (B)",
         "ext. memory overhead"],
        [[r["design"], format_percent(r["overhead"]), r["onchip_bytes"],
          format_percent(r["mem_overhead"], signed=False)] for r in m],
        title="E15e: two roads past §5 — counters vs a hash tree",
    ))
    return "\n\n".join(parts)


def check(results: dict) -> None:
    o = results["overhead"]
    for r in o["rows"]:
        assert r["shielded"]["overhead"] > r["bare"]["overhead"]
    assert o["tag_overhead_fraction"] == 0.25
    t = results["tamper-replay"]
    assert t["versioned"] is True
    assert t["unversioned"] is False
    versions, merkle = results["merkle-vs-versions"]["rows"]
    # The tree trades on-chip state (KBs -> a root + small cache) for
    # longer verification paths and a bigger external footprint.
    assert merkle["onchip_bytes"] < versions["onchip_bytes"] / 3
    assert merkle["overhead"] > versions["overhead"]
    assert merkle["mem_overhead"] > versions["mem_overhead"]
    k = results["keystream"]
    assert k["succeeded"]
    assert k["speedup"] > 10_000


EXPERIMENT = Experiment(
    id="e15",
    title="Integrity shield: MAC tags, replay, Merkle trees",
    section="§5 future work",
    tasks={
        "overhead": task_overhead,
        "tamper-replay": task_tamper_replay,
        "merkle-vs-versions": task_merkle_vs_versions,
        "keystream": task_keystream,
    },
    render=render,
    check=check,
)
