"""E06 — Figure 3 / §3: Best's 1979 engine — cheap and fast, statistically
weak.

Paper claims reproduced:
* Best's cipher is built from "basic cryptographic functions such as mono
  and poly-alphabetic substitutions and byte transpositions" — near-zero
  latency and tiny area compared to NIST-grade cores;
* "the principle allowing a strong security is known: hardware
  implementation of algorithm approved by the NIST" — the statistical gap
  between Best and AES on the same image is the measurable content of that
  judgment.
"""

from __future__ import annotations

from ...analysis import (
    format_gates,
    format_percent,
    format_table,
    score_engine_ciphertext,
)
from ...core.registry import make_engine
from ...traces import make_workload, synthetic_code_image
from ..base import Experiment, TaskContext
from .common import N_ACCESSES, measure, overhead_metrics


def task_best_vs_aes(ctx: TaskContext) -> dict:
    image = synthetic_code_image(size=ctx.n(32 * 1024, quick=8 * 1024))
    trace = make_workload("mixed", n=ctx.n(N_ACCESSES))
    rows = []
    for name in ("best", "xom"):
        engine = make_engine(name)  # functional: scored on real ciphertext
        score = score_engine_ciphertext(engine, image)
        perf = measure(name, trace)
        rows.append({
            "engine": name,
            "area": engine.area().total,
            "entropy": round(score.entropy_bits_per_byte, 6),
            "collisions": round(score.block_collision_rate, 6),
            "distinguishable": score.distinguishable,
            **overhead_metrics(perf),
        })
    return {"rows": rows}


def render(results: dict) -> str:
    rows = results["best-vs-aes"]["rows"]
    return format_table(
        ["engine", "overhead", "area", "ct entropy", "block collisions",
         "distinguishable?"],
        [[r["engine"], format_percent(r["overhead"]),
          format_gates(r["area"]), f"{r['entropy']:.2f}",
          f"{r['collisions']:.4f}", r["distinguishable"]] for r in rows],
        title="E06: Best 1979 vs pipelined AES (survey Fig. 3 / §3)",
    )


def check(results: dict) -> None:
    best, xom = results["best-vs-aes"]["rows"]
    # Cheap and fast...
    assert best["overhead"] < xom["overhead"]
    assert best["area"] < xom["area"] / 10
    # ...but statistically weaker on structured images.
    assert best["collisions"] > xom["collisions"]
    assert best["entropy"] <= xom["entropy"] + 1e-9


EXPERIMENT = Experiment(
    id="e06",
    title="Best 1979 engine vs pipelined AES",
    section="§3 / Fig. 3",
    tasks={"best-vs-aes": task_best_vs_aes},
    render=render,
    check=check,
)
