"""E14 — §3/§5 synthesis: the survey's comparison, made quantitative.

One row per surveyed engine: performance overhead on the workload suite,
silicon area, random-access support, sub-block-write behaviour, and the
highest IBM adversary class the engine's confidentiality withstands.  This
is the table the survey never printed but constantly argues about — the
trade between "intended security (robustness) and affordable performance
loss" (§2.2).
"""

from __future__ import annotations

from ...analysis import format_gates, format_percent, format_table
from ...attacks import rate_engine
from ...core.registry import engine_names, get_spec, make_engine
from ...traces import make_workload, sequential_code
from ..base import Experiment, TaskContext
from .common import N_ACCESSES, clamp, measure, overhead_metrics

IMAGE_SIZE = 32 * 1024

#: Smallest independently decryptable unit per engine.
RANDOM_ACCESS_GRANULARITY = {
    "best": "block",
    "ds5002fp": "byte",
    "ds5240": "block",
    "vlsi": "page",
    "gi": "region",
    "gilmont": "block",
    "xom": "block",
    "aegis": "line",
    "stream": "byte",
}
#: Granularities that keep per-line random access cheap.
RANDOM_ACCESS_OK = {"byte", "block", "line"}


#: The engines every check references; quick mode restricts the table to
#: these (vlsi and ds5240 are the slowest simulations and only appear in
#: the full table).
CHECKED_ENGINES = ("best", "ds5002fp", "gi", "gilmont", "xom", "aegis",
                   "stream")


def task_table(ctx: TaskContext) -> dict:
    n = ctx.n(N_ACCESSES, quick=800)
    # install_image functionally enciphers the whole image, so quick mode
    # shrinks the image rather than (only) the trace.
    image_size = 8 * 1024 if ctx.quick else IMAGE_SIZE
    workloads = {
        "code": sequential_code(n, code_size=image_size),
        "mixed": clamp(make_workload("mixed", n=n), image_size),
    }
    names = [name for name in engine_names(survey_only=True)
             if not ctx.quick or name in CHECKED_ENGINES]
    rows = []
    for name in names:
        overheads = {}
        for wname, trace in workloads.items():
            overheads[wname] = overhead_metrics(measure(
                name, trace, image=bytes(image_size),
            ))
        engine = make_engine(name)
        rating = rate_engine(engine.name)
        granularity = RANDOM_ACCESS_GRANULARITY[name]
        rows.append({
            "engine": name,
            "summary": get_spec(name).summary,
            "code": overheads["code"],
            "mixed": overheads["mixed"],
            "area": engine.area().total,
            "granularity": granularity,
            "random_access": granularity in RANDOM_ACCESS_OK,
            "class": rating.highest_class_withstood,
        })
    return {"rows": rows}


def render(results: dict) -> str:
    rows = results["table"]["rows"]
    return format_table(
        ["engine", "code overhead", "mixed overhead", "area",
         "access granularity", "withstands class"],
        [[r["engine"], format_percent(r["code"]["overhead"]),
          format_percent(r["mixed"]["overhead"]), format_gates(r["area"]),
          r["granularity"], r["class"] or "none"] for r in rows],
        title="E14: the survey's comparison, quantified (survey §3/§5)",
    )


def check(results: dict) -> None:
    rows = results["table"]["rows"]
    by_name = {r["engine"]: r for r in rows}

    # §5's conclusion in data form.
    # 1. The broken/weak engines are the cheap fast ones.
    assert by_name["best"]["class"] == 0
    assert by_name["ds5002fp"]["class"] == 1
    assert by_name["best"]["area"] < 50_000
    # 2. The NIST-grade engines withstand the consumer-market threat
    #    (class II) but pay for it in area or cycles.
    for strong in ("xom", "aegis", "stream"):
        assert by_name[strong]["class"] >= 2
        assert by_name[strong]["area"] > 100_000
    # 3. Whole-region chaining forfeits random access and pays the most on
    #    mixed workloads among the 3DES designs.
    assert not by_name["gi"]["random_access"]
    assert by_name["gi"]["mixed"]["overhead"] > \
        by_name["aegis"]["mixed"]["overhead"]
    # 4. The stream engine is the overall performance winner among
    #    class-II-resistant designs.
    strong_named = ["xom", "aegis", "stream", "gilmont"]
    best_mixed = min(by_name[n]["mixed"]["overhead"] for n in strong_named)
    assert by_name["stream"]["mixed"]["overhead"] == best_mixed
    # 5. No engine is simultaneously the cheapest and the most secure —
    #    the survey's "challenge" stated as a Pareto fact.
    most_secure = {r["engine"] for r in rows
                   if r["class"] == max(x["class"] for x in rows)}
    cheapest = min(rows, key=lambda r: r["area"])
    assert cheapest["engine"] not in most_secure


EXPERIMENT = Experiment(
    id="e14",
    title="The survey's comparison table, quantified",
    section="§3/§5",
    tasks={"table": task_table},
    render=render,
    check=check,
)
