"""E05 — §2.3 / Figure 6: the Kuhn attack on the DS5002FP, and the DS5240's
answer.

Paper claims reproduced:
* "The hacker circumvents the cryptographic problem by ... applying
  exhaustive attack (8-bit instruction <=> 256 possibilities).  After
  having identified the MOV instruction, he dumped the external memory
  content in clear form through the parallel-port" — executed end to end;
* "the 8-bit based ciphering passes to 64-bit based ciphering" — quantified
  as search-space explosion (2^8 -> 2^64) and block diffusion.
"""

from __future__ import annotations

from ...analysis import format_table
from ...attacks import (
    DallasBoard,
    KuhnAttack,
    PortBasedKuhnAttack,
    ScrambledDallasBoard,
    block_diffusion_probe,
    brute_force_tries,
)
from ...crypto import AddressScrambler, SmallBlockCipher, TweakableFeistel
from ...isa import assemble, secret_table_program
from ..base import Experiment, TaskContext

MEMORY_SIZE = 1024


def _firmware(ctx: TaskContext) -> bytes:
    size = ctx.n(MEMORY_SIZE, quick=512)
    return assemble(secret_table_program(seed=2005, table_len=64), size=size)


def task_kuhn_attack(ctx: TaskContext) -> dict:
    firmware = _firmware(ctx)
    board = DallasBoard(SmallBlockCipher(b"ds5002fp-factory-key"), firmware,
                        memory_size=len(firmware))
    report = KuhnAttack(board).run()
    return {
        "memory_size": len(firmware),
        "bytes_recovered": sum(
            a == b for a, b in zip(report.plaintext, firmware)),
        "fully_recovered": report.plaintext == firmware,
        "probe_runs": report.probe_runs,
        "steps_executed": report.steps_executed,
        "ambiguous_cells": len(report.ambiguous_cells),
    }


def task_scrambled_attack(ctx: TaskContext) -> dict:
    """The same break with the address bus enciphered as well: the
    port-based variant learns the address permutation from the CPU's own
    fetch pattern."""
    firmware = _firmware(ctx)
    board = ScrambledDallasBoard(
        SmallBlockCipher(b"ds5002fp-factory-key"), firmware,
        memory_size=len(firmware),
        scrambler=AddressScrambler(b"address-bus-key", size=len(firmware)),
    )
    report = PortBasedKuhnAttack(board).run()
    return {
        "memory_size": len(firmware),
        "bytes_recovered": sum(
            a == b for a, b in zip(report.plaintext, firmware)),
        "fully_recovered": report.plaintext == firmware,
        "probe_runs": report.probe_runs,
    }


def task_resistance(ctx: TaskContext) -> dict:
    rows = []
    for label, bits in (("DS5002FP", 8), ("DS5240 (DES)", 64)):
        cipher = TweakableFeistel(b"key", block_bits=bits)
        rows.append({
            "device": label,
            "block_bits": bits,
            "tries_per_address": brute_force_tries(bits),
            "diffusion": round(block_diffusion_probe(cipher), 6),
        })
    return {"rows": rows}


def render(results: dict) -> str:
    k = results["kuhn-attack"]
    attack = format_table(
        ["metric", "value"],
        [
            ["memory dumped (bytes)", k["memory_size"]],
            ["bytes exactly recovered", k["bytes_recovered"]],
            ["probe runs", k["probe_runs"]],
            ["instructions single-stepped", k["steps_executed"]],
            ["ambiguous cells", k["ambiguous_cells"]],
        ],
        title="E05a: cipher instruction search vs DS5002FP (survey §2.3)",
    )
    s = results["scrambled-attack"]
    scrambled = format_table(
        ["metric", "value"],
        [
            ["memory dumped (bytes)", s["memory_size"]],
            ["bytes exactly recovered", s["bytes_recovered"]],
            ["probe runs", s["probe_runs"]],
        ],
        title="E05c: the attack vs data + address encryption",
    )
    rows = results["resistance"]["rows"]
    resistance = format_table(
        ["device", "block bits", "tries/address", "bit diffusion"],
        [[r["device"], r["block_bits"], f"{r['tries_per_address']:.2e}",
          f"{r['diffusion']:.2f}"] for r in rows],
        title="E05b: why 64-bit blocks stop the search (survey §3)",
    )
    return attack + "\n\n" + scrambled + "\n\n" + resistance


def check(results: dict) -> None:
    k = results["kuhn-attack"]
    assert k["fully_recovered"]
    # Kuhn's scale: a few 256-candidate sweeps plus one run per byte.
    assert k["probe_runs"] < 6 * 256 + k["memory_size"] + 64
    s = results["scrambled-attack"]
    assert s["fully_recovered"]
    assert s["probe_runs"] < 8 * 256 + s["memory_size"] + 64
    ds5002, ds5240 = results["resistance"]["rows"]
    assert ds5002["tries_per_address"] == 256
    assert ds5240["tries_per_address"] == 2 ** 64
    # The 64-bit block diffuses: a single-byte probe garbles the block.
    assert 0.35 < ds5240["diffusion"] < 0.65


EXPERIMENT = Experiment(
    id="e05",
    title="Kuhn attack on DS5002FP; DS5240's 64-bit answer",
    section="§2.3 / Fig. 6",
    tasks={
        "kuhn-attack": task_kuhn_attack,
        "scrambled-attack": task_scrambled_attack,
        "resistance": task_resistance,
    },
    render=render,
    check=check,
)
