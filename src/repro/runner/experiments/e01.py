"""E01 — Figure 1 / §2.1-2.2: session-key exchange and the asymmetric vs
symmetric cost gap.

Paper claims reproduced:
* the eavesdropper on the insecure channel learns neither K nor the
  software;
* asymmetric algorithms "require more processing power (due to modular
  exponentiation) than symmetric algorithm" and "ciphered text is longer
  than the original clear text";
* hence "only symmetric algorithms will be considered" for the bus (§2.2).

Cost metric: modeled *hardware* cycles, not Python wall time.  RSA cost =
modular multiplications x a 32-bit-datapath schoolbook modmul; AES cost =
blocks x the iterative core's 11 cycles.
"""

from __future__ import annotations

from ...analysis import format_table
from ...core import run_distribution
from ...crypto import AES, CTR, DRBG, generate_keypair
from ...sim.pipeline import AES_ITERATIVE
from ..base import Experiment, TaskContext
from .common import KEY16


def modmul_cycles(modulus_bits: int) -> int:
    """Schoolbook modular multiply on a 32-bit datapath: (n/32)^2 MACs."""
    words = -(-modulus_bits // 32)
    return words * words


def task_cost_gap(ctx: TaskContext) -> dict:
    """Modeled hardware cycles for RSA vs AES-CTR over growing payloads."""
    payload_sizes = (1024, 4096) if ctx.quick else (1024, 4096, 16384)
    key_bits = 512
    rng = DRBG(1)
    keypair = generate_keypair(key_bits, rng)
    per_modmul = modmul_cycles(key_bits)
    rows = []
    for size in payload_sizes:
        payload = rng.random_bytes(size)

        chunk = keypair.public.modulus_bytes - 11
        keypair.private.modmul_count = 0
        ct_rsa = b""
        for i in range(0, size, chunk):
            block_ct = keypair.public.encrypt(payload[i: i + chunk], rng)
            keypair.private.decrypt(block_ct)   # the processor-side cost
            ct_rsa += block_ct
        rsa_cycles = keypair.private.modmul_count * per_modmul

        ct_aes = CTR(AES(KEY16), nonce=bytes(12)).encrypt(payload)
        aes_cycles = AES_ITERATIVE.time_for(-(-size // 16))

        rows.append({
            "size": size,
            "rsa_cycles": rsa_cycles,
            "aes_cycles": aes_cycles,
            "ratio": round(rsa_cycles / max(aes_cycles, 1), 3),
            "rsa_expansion": round(len(ct_rsa) / size, 4),
            "aes_expansion": round(len(ct_aes) / size, 4),
        })
    return {"key_bits": key_bits, "rows": rows}


def task_protocol(ctx: TaskContext) -> dict:
    """Figure-1 distribution: the eavesdropper learns nothing useful."""
    software_size = 1024 if ctx.quick else 2048
    software = DRBG(2).random_bytes(software_size)
    processor, eve, session_key = run_distribution(software, seed=3)
    return {
        "software_size": software_size,
        "session_key_established": processor._session_key == session_key,
        "eve_saw_key": eve.saw(session_key),
        "eve_saw_software": eve.saw(software[:16]),
        "messages_observed": len(eve.transcript),
        "bytes_observed": eve.total_bytes,
    }


def render(results: dict) -> str:
    rows = results["cost-gap"]["rows"]
    gap = format_table(
        ["payload", "RSA-512 decrypt (cycles)", "AES-CTR (cycles)",
         "RSA/AES", "RSA expansion", "AES expansion"],
        [
            [r["size"], f"{r['rsa_cycles']:,}", f"{r['aes_cycles']:,}",
             f"{r['ratio']:.0f}x", f"{r['rsa_expansion']:.2f}x",
             f"{r['aes_expansion']:.2f}x"]
            for r in rows
        ],
        title="E01: asymmetric vs symmetric bulk encryption, modeled "
              "hardware cycles (survey §2.2)",
    )
    p = results["protocol"]
    proto = format_table(
        ["check", "value"],
        [
            ["session key established", p["session_key_established"]],
            ["eavesdropper saw K", p["eve_saw_key"]],
            ["eavesdropper saw software", p["eve_saw_software"]],
            ["messages observed", p["messages_observed"]],
            ["bytes observed", p["bytes_observed"]],
        ],
        title="E01: Figure-1 distribution protocol",
    )
    return gap + "\n\n" + proto


def check(results: dict) -> None:
    p = results["protocol"]
    assert p["session_key_established"]
    assert not p["eve_saw_key"]
    assert not p["eve_saw_software"]
    assert p["bytes_observed"] > p["software_size"]
    # RSA costs orders of magnitude more per byte and expands the
    # ciphertext; AES does neither.
    for r in results["cost-gap"]["rows"]:
        assert r["ratio"] > 100
        assert r["rsa_expansion"] > 1.05
        assert r["aes_expansion"] == 1.0


EXPERIMENT = Experiment(
    id="e01",
    title="Session-key exchange; asymmetric vs symmetric cost gap",
    section="§2.1-2.2 / Fig. 1",
    tasks={"cost-gap": task_cost_gap, "protocol": task_protocol},
    render=render,
    check=check,
)
