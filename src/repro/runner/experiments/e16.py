"""E16 (extension) — the placement question with an L2, plus energy.

Generalizes Figure 7 to a two-level hierarchy: the EDU can guard the
L2-memory boundary (both caches plaintext, crypto on off-chip traffic only)
or the L1-L2 boundary (ciphertext L2 — tolerates on-chip probing of the
big array, §4's class-III concern — at crypto-per-L1-miss cost).  Also
prices the engines in energy, the survey constraint ("power consumption")
E14 leaves unquantified, and shows compression saving bus energy.
"""

from __future__ import annotations

from ...analysis import format_percent, format_table
from ...core.registry import make_engine
from ...sim import (
    EDU_L1_L2,
    EDU_L2_MEMORY,
    CacheConfig,
    MemoryConfig,
    SecureSystem,
    TwoLevelSystem,
    estimate_run,
)
from ...traces import make_workload, sequential_code, synthetic_code_image
from ..base import Experiment, TaskContext
from .common import N_ACCESSES, clamp

L1 = CacheConfig(size=2048, line_size=32, associativity=2, hit_latency=1)
L2 = CacheConfig(size=16 * 1024, line_size=32, associativity=4,
                 hit_latency=8)
MEM = MemoryConfig(size=1 << 21, latency=60)
IMAGE_SIZE = 32 * 1024


def task_hierarchy(ctx: TaskContext) -> dict:
    trace = clamp(make_workload("mixed", n=ctx.n(N_ACCESSES)), IMAGE_SIZE)
    rows = []
    baseline = TwoLevelSystem(l1_config=L1, l2_config=L2, mem_config=MEM)
    baseline.install_image(0, bytes(IMAGE_SIZE))
    base_report = baseline.run(list(trace))

    for level in (EDU_L2_MEMORY, EDU_L1_L2):
        engine = make_engine("xom", functional=False)
        system = TwoLevelSystem(
            engine=engine, l1_config=L1, l2_config=L2, mem_config=MEM,
            edu_level=level,
        )
        system.install_image(0, bytes(IMAGE_SIZE))
        report = system.run(list(trace))
        rows.append({
            "level": level,
            "overhead": round(report.overhead_vs(base_report), 6),
            "crypto_ops": engine.stats.lines_decrypted
            + engine.stats.lines_encrypted,
        })
    return {"rows": rows}


#: (label, registry name, engine params) for the energy comparison.
_ENERGY_ENGINES = (
    ("baseline", None, {}),
    ("best-1979", "best", {}),
    ("ds5240", "ds5240", {}),
    ("xom-aes", "xom", {}),
    ("stream-ctr", "stream", {}),
    ("compress+encrypt", "compress", {}),
)


def task_energy(ctx: TaskContext) -> dict:
    trace = sequential_code(ctx.n(N_ACCESSES), code_size=IMAGE_SIZE)
    image = synthetic_code_image(size=IMAGE_SIZE)
    cache = CacheConfig(size=1024, line_size=32, associativity=2)
    narrow = MemoryConfig(size=1 << 21, latency=40, bus_width=2,
                          cycles_per_beat=2)
    rows = []
    for label, name, params in _ENERGY_ENGINES:
        engine = (make_engine(name, functional=False, **params)
                  if name else None)
        system = SecureSystem(engine=engine, cache_config=cache,
                              mem_config=narrow)
        system.install_image(0, image)
        report = system.run(list(trace))
        energy = estimate_run(report, engine)
        rows.append({
            "engine": label,
            "cycles": report.cycles,
            "bus_bytes": report.bus_bytes,
            "energy_uj": round(energy.total_uj, 6),
        })
    return {"rows": rows}


def render(results: dict) -> str:
    rows = results["hierarchy"]["rows"]
    hierarchy = format_table(
        ["EDU boundary", "overhead vs 2-level baseline", "crypto line-ops"],
        [[r["level"], format_percent(r["overhead"]), r["crypto_ops"]]
         for r in rows],
        title="E16a: Figure 7, generalized to an L1/L2 hierarchy",
    )
    erows = results["energy"]["rows"]
    energy = format_table(
        ["engine", "cycles", "bus bytes", "energy (uJ)"],
        [[r["engine"], r["cycles"], r["bus_bytes"],
          f"{r['energy_uj']:.1f}"] for r in erows],
        title="E16b: the survey's unquantified constraint — energy "
              "(narrow-bus memory)",
    )
    return hierarchy + "\n\n" + energy


def check(results: dict) -> None:
    by_level = {r["level"]: r for r in results["hierarchy"]["rows"]}
    # Guarding the inner boundary costs more crypto work and more cycles.
    assert by_level[EDU_L1_L2]["crypto_ops"] > \
        by_level[EDU_L2_MEMORY]["crypto_ops"]
    assert by_level[EDU_L1_L2]["overhead"] >= \
        by_level[EDU_L2_MEMORY]["overhead"]
    by_name = {r["engine"]: r for r in results["energy"]["rows"]}
    # Every engine costs energy over the baseline...
    for name in ("best-1979", "ds5240", "xom-aes", "stream-ctr"):
        assert by_name[name]["energy_uj"] > by_name["baseline"]["energy_uj"]
    # ...except compression, which can pay for its own crypto by moving
    # fewer bytes across the expensive external bus.
    assert by_name["compress+encrypt"]["bus_bytes"] < \
        by_name["baseline"]["bus_bytes"]
    assert by_name["compress+encrypt"]["energy_uj"] < \
        by_name["xom-aes"]["energy_uj"]


EXPERIMENT = Experiment(
    id="e16",
    title="EDU placement in an L1/L2 hierarchy; energy",
    section="extension of §4 / Fig. 7",
    tasks={"hierarchy": task_hierarchy, "energy": task_energy},
    render=render,
    check=check,
)
