"""E19 (extension) — §2.3/§5: the active-attack matrix, executed.

The survey's threat model gives the class-II adversary the ability to
modify external memory and the bus ("attacks based on the modification of
the fetched instructions"), and its §5 future-work sentence asks for
integrity to thwart them.  This experiment runs that adversary against
every engine in the registry: each task drives the full engine list
through one fault class (:mod:`repro.faults` campaigns) and records who
detected it, who silently executed corrupted plaintext, and who was
unaffected.

The claim under test is **conformance**: each engine's declared
``detects`` set (its security claim) must match its campaign behaviour
exactly — integrity-bearing engines raise
:class:`~repro.core.engine.TamperDetected` at the audit fetch, pure
confidentiality engines garble silently, and the unversioned-tag ablation
reproduces E15's replay hole under a full campaign instead of a
hand-crafted swap.  The assembled engines x attacks table is published at
the top level of the metrics document as ``detection_matrix``.
"""

from __future__ import annotations

from ...analysis import format_table
from ...faults import FAULT_KINDS, campaign_labels, detection_matrix, run_campaign
from ..base import Experiment, TaskContext

#: Render glyphs per verdict, in campaign vocabulary.
_GLYPHS = {
    "detected": "DETECTED",
    "silent-corruption": "silent",
    "missed": "no-effect",
    "clean": "clean",
    "broken": "BROKEN",
}


def _campaign_task(kind):
    def task(ctx: TaskContext) -> dict:
        rows = []
        for label in campaign_labels():
            result = run_campaign(label, kind, seed=ctx.seed,
                                  quick=ctx.quick)
            rows.append(result.to_metrics())
        return {"rows": rows}

    return task


def _all_rows(results: dict):
    for name in sorted(results):
        for row in results[name]["rows"]:
            yield row


def render(results: dict) -> str:
    columns = ["baseline"] + list(FAULT_KINDS)
    by_label = {}
    for row in _all_rows(results):
        by_label.setdefault(row["label"], {})[row["kind"]] = row
    table_rows = []
    for label in sorted(by_label):
        cells = [label]
        for column in columns:
            row = by_label[label].get(column)
            cells.append("-" if row is None else _GLYPHS[row["verdict"]])
        table_rows.append(cells)
    return format_table(
        ["engine"] + columns, table_rows,
        title="E19: active-attack detection matrix "
              "(DETECTED = verdict path fired; silent = corrupted "
              "plaintext executed)",
    )


def check(results: dict) -> None:
    for row in _all_rows(results):
        where = f"{row['label']} x {row['kind']}"
        assert row["conforms"], (
            f"{where}: engine behaviour contradicts its detects claim "
            f"(verdict={row['verdict']}, expected_detect="
            f"{row['expected_detect']})"
        )
        if row["kind"] == "baseline":
            assert row["verdict"] == "clean", f"{where}: broken round-trip"
        elif row["expected_detect"]:
            assert row["verdict"] == "detected", where
        assert row["injected"] == (0 if row["kind"] == "baseline" else 1), where
    rows = {(r["label"], r["kind"]): r for r in _all_rows(results)}
    # The E15 replay hole, reproduced by a full campaign: tags without
    # on-chip versions accept the stale line and execute it.
    assert rows[("integrity-stream-unversioned", "replay")]["verdict"] \
        == "silent-corruption"
    # Replaying a memory that was never written back is a no-op.
    assert rows[("compress", "replay")]["verdict"] == "missed"


def publish(results: dict):
    return "detection_matrix", detection_matrix(_all_rows(results))


EXPERIMENT = Experiment(
    id="e19",
    title="Fault-injection campaigns: the active-attack matrix",
    section="§2.3 threat model / §5 future work",
    tasks={"baseline": _campaign_task(None),
           **{kind: _campaign_task(kind) for kind in FAULT_KINDS}},
    render=render,
    check=check,
    publish=publish,
)
