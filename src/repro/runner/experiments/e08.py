"""E08 — Figure 5 / §3: General Instrument's 3DES-CBC + keyed hash.

Paper claims reproduced:
* "cipher block chaining technique is very robust but implies unacceptable
  CPU performance degradation for random accesses in external memory" —
  swept over chain-region size, with the sequential case as contrast;
* "the possibility to authenticate the data coming from external memory
  thanks to a keyed hash algorithm" — tamper detection demonstrated and
  its verification cost measured;
* chain-granularity ablation: region = line degenerates into AEGIS-style
  per-line chaining and the penalty vanishes.
"""

from __future__ import annotations

from ...analysis import ascii_plot, format_percent, format_table
from ...core import AuthenticationError
from ...core.engine import MemoryPort
from ...core.registry import make_engine
from ...sim import Bus, CacheConfig, MainMemory, MemoryConfig
from ...traces import make_workload
from ..base import Experiment, TaskContext
from .common import N_ACCESSES, clamp, measure, overhead_metrics

CACHE = CacheConfig(size=1024, line_size=32, associativity=2)
MEM = MemoryConfig(size=1 << 21, latency=40)
IMAGE_SIZE = 32 * 1024


def _sweep_region_size(ctx: TaskContext, workload: str) -> dict:
    region_sizes = (32, 1024, 4096) if ctx.quick else (32, 256, 1024, 4096)
    # install_image chains the whole image through 3DES, so quick mode
    # shrinks the image rather than (only) the trace.
    image_size = 8 * 1024 if ctx.quick else IMAGE_SIZE
    trace = clamp(make_workload(workload, n=ctx.n(N_ACCESSES, quick=800)),
                  image_size)
    rows = []
    for region in region_sizes:
        result = measure(
            "gi", trace,
            engine_params={"region_size": region, "authenticate": False},
            image=bytes(image_size), cache_config=CACHE, mem_config=MEM,
        )
        rows.append({"region": region, **overhead_metrics(result)})
    return {"rows": rows}


def task_sequential(ctx: TaskContext) -> dict:
    return _sweep_region_size(ctx, "sequential")


def task_data_random(ctx: TaskContext) -> dict:
    return _sweep_region_size(ctx, "data-random")


def task_authentication(ctx: TaskContext) -> dict:
    engine = make_engine("gi", region_size=1024, authenticate=True)
    port = MemoryPort(MainMemory(MemoryConfig(size=1 << 16)), Bus())
    image = bytes((i * 7) & 0xFF for i in range(4096))
    engine.install_image(port.memory, 0, image)
    _, clean_cycles = engine.fill_line(port, 0, 32)
    # Attacker flips one external bit.
    tampered = port.memory.dump(2048, 1)[0] ^ 1
    port.memory.load_image(2048, bytes([tampered]))
    try:
        engine.fill_line(port, 2048, 32)
        detected = False
    except AuthenticationError:
        detected = True
    return {
        "clean_cycles": clean_cycles,
        "tamper_detected": detected,
        "tamper_events": engine.verdicts.tampers,
    }


def render(results: dict) -> str:
    sweeps = {
        "sequential": results["sequential-sweep"]["rows"],
        "data-random": results["data-random-sweep"]["rows"],
    }
    parts = []
    for workload, rows in sweeps.items():
        parts.append(format_table(
            ["chain region (B)", "overhead"],
            [[r["region"], format_percent(r["overhead"])] for r in rows],
            title=f"E08: 3DES-CBC chain-region sweep — {workload} "
                  "(survey Fig. 5)",
        ))
    parts.append(ascii_plot(
        {name: [(r["region"], 100 * r["overhead"]) for r in rows]
         for name, rows in sweeps.items()},
        title="E08 figure: overhead (%) vs chain-region size",
        x_label="chain region (bytes)", y_label="%",
    ))
    a = results["authentication"]
    parts.append(format_table(
        ["metric", "value"],
        [["clean first-touch cycles (incl. hash)", a["clean_cycles"]],
         ["single-bit tamper detected", a["tamper_detected"]],
         ["tamper events counted", a["tamper_events"]]],
        title="E08b: keyed-hash authentication (survey Fig. 5)",
    ))
    return "\n\n".join(parts)


def check(results: dict) -> None:
    rnd = {r["region"]: r["overhead"]
           for r in results["data-random-sweep"]["rows"]}
    seq = {r["region"]: r["overhead"]
           for r in results["sequential-sweep"]["rows"]}
    # Random access degrades sharply with the chain length...
    assert rnd[4096] > 5 * rnd[32]
    # ...while per-line chaining (the AEGIS fixed point) is bounded by the
    # iterative core's drain, not the chain.
    assert rnd[32] < 6.0
    # Sequential access is insulated by the chain register at every size.
    assert seq[4096] < rnd[4096] / 3
    a = results["authentication"]
    assert a["tamper_detected"]
    assert a["tamper_events"] == 1


EXPERIMENT = Experiment(
    id="e08",
    title="General Instrument 3DES-CBC + keyed hash",
    section="§3 / Fig. 5",
    tasks={
        "sequential-sweep": task_sequential,
        "data-random-sweep": task_data_random,
        "authentication": task_authentication,
    },
    render=render,
    check=check,
)
