"""E07 — Figure 4 / §3: VLSI Technology's page-wise secure DMA.

Paper claims reproduced:
* "data transfers to and from the external memory are done page-by-page
  ... This system allows the use of block cipher techniques (robustness)"
  — the page transfer amortizes a heavyweight 3DES-CBC over many accesses;
* the implied trade: large pages win when locality is high (few faults,
  on-chip hits are nearly free) and lose when access is scattered
  (fault cost scales with the page size).
"""

from __future__ import annotations

from ...analysis import (
    ascii_plot,
    format_percent,
    format_table,
    measure_overhead,
)
from ...core.registry import make_engine
from ...sim import CacheConfig, MemoryConfig
from ...traces import make_workload
from ..base import Experiment, TaskContext
from .common import N_ACCESSES, overhead_metrics

CACHE = CacheConfig(size=1024, line_size=32, associativity=2)
MEM = MemoryConfig(size=1 << 21, latency=40)
BUFFER_BYTES = 8192  # constant on-chip budget across the sweep


def _sweep_page_size(ctx: TaskContext, workload: str) -> dict:
    page_sizes = (256, 1024, 4096) if ctx.quick \
        else (256, 512, 1024, 2048, 4096)
    trace = make_workload(workload, n=ctx.n(N_ACCESSES))
    rows = []
    for page_size in page_sizes:
        engine = make_engine(
            "vlsi", functional=False, page_size=page_size,
            buffer_pages=max(1, BUFFER_BYTES // page_size),
        )
        result = measure_overhead(
            lambda e=engine: e, trace, workload=workload,
            cache_config=CACHE, mem_config=MEM,
        )
        rows.append({
            "page_size": page_size,
            "faults": engine.page_faults,
            "writebacks": engine.page_writebacks,
            **overhead_metrics(result),
        })
    return {"rows": rows}


def task_sequential(ctx: TaskContext) -> dict:
    return _sweep_page_size(ctx, "sequential")


def task_data_random(ctx: TaskContext) -> dict:
    return _sweep_page_size(ctx, "data-random")


def task_locality(ctx: TaskContext) -> dict:
    """With strong locality the page buffer behaves like an L2: most
    accesses never reach the bus at all."""
    trace = make_workload("sequential", n=ctx.n(N_ACCESSES))
    engine = make_engine("vlsi", functional=False, page_size=2048,
                         buffer_pages=4)
    result = measure_overhead(
        lambda: engine, trace, cache_config=CACHE, mem_config=MEM,
    )
    return overhead_metrics(result)


def render(results: dict) -> str:
    sweeps = {
        "sequential": results["sequential-sweep"]["rows"],
        "data-random": results["data-random-sweep"]["rows"],
    }
    parts = []
    for workload, rows in sweeps.items():
        parts.append(format_table(
            ["page size", "overhead", "page faults", "page writebacks"],
            [[r["page_size"], format_percent(r["overhead"]), r["faults"],
              r["writebacks"]] for r in rows],
            title=f"E07: secure-DMA page-size sweep — {workload} "
                  "(survey Fig. 4)",
        ))
    parts.append(ascii_plot(
        {name: [(r["page_size"], 100 * r["overhead"]) for r in rows]
         for name, rows in sweeps.items()},
        title="E07 figure: overhead (%) vs page size",
        x_label="page size (bytes)", y_label="%",
    ))
    parts.append(format_table(
        ["metric", "value"],
        [["sequential overhead, 2048B pages x4",
          format_percent(results["locality"]["overhead"])]],
        title="E07: locality makes secure DMA competitive",
    ))
    return "\n\n".join(parts)


def check(results: dict) -> None:
    seq = {r["page_size"]: r for r in results["sequential-sweep"]["rows"]}
    rnd = {r["page_size"]: r for r in results["data-random-sweep"]["rows"]}
    # High locality: bigger pages mean fewer faults.
    assert seq[4096]["faults"] < seq[256]["faults"]
    # Scattered access: every fault drags a whole page across the bus, so
    # the random workload suffers far more at any page size.
    for size in (256, 1024, 4096):
        assert rnd[size]["overhead"] > 3 * max(seq[size]["overhead"], 0.01)
    # And for the random workload, growing pages past the sweet spot hurts.
    assert rnd[4096]["overhead"] > rnd[256]["overhead"]
    # Bulk 3DES per page amortized over 64 lines: modest overhead.
    assert results["locality"]["overhead"] < 3.0


EXPERIMENT = Experiment(
    id="e07",
    title="VLSI Technology page-wise secure DMA",
    section="§3 / Fig. 4",
    tasks={
        "sequential-sweep": task_sequential,
        "data-random-sweep": task_data_random,
        "locality": task_locality,
    },
    render=render,
    check=check,
)
