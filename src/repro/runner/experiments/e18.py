"""E18 (extension) — address confidentiality: what it costs, what it buys.

The survey's engines encrypt the data bus; Best's patents and the DS5002FP
also obscured the *address* bus, and General Instrument's patent title
promises "block reordering".  This experiment measures both mechanisms
against the access-pattern side channel:

* line-address scrambling (`AddressScrambledEngine`) hides sequentiality
  from a probe at ~zero performance cost — but not the working-set size or
  revisit structure;
* GI block reordering hides the chain order inside a region, at the price
  of the sequential chain shortcut (every fill becomes a region burst).
"""

from __future__ import annotations

from ...analysis import format_percent, format_table
from ...attacks import BusProbe, classify_pattern, profile_probe
from ...core.registry import make_engine
from ...sim import CacheConfig, MemoryConfig, SecureSystem
from ...traces import sequential_code
from ..base import Experiment, TaskContext
from .common import N_ACCESSES, measure, overhead_metrics

CACHE = CacheConfig(size=1024, line_size=32, associativity=2)
MEM = MemoryConfig(size=1 << 21, latency=40)
IMAGE_SIZE = 16 * 1024


def task_scrambling_probe(ctx: TaskContext) -> dict:
    trace = sequential_code(ctx.n(N_ACCESSES), code_size=IMAGE_SIZE)
    rows = []
    for label, engine in (
        ("stream (addresses in clear)", make_engine("stream")),
        ("stream + address scrambling",
         make_engine("addr-scramble-stream",
                     region_lines=IMAGE_SIZE // 32)),
    ):
        system = SecureSystem(engine=engine, cache_config=CACHE,
                              mem_config=MEM)
        probe = BusProbe()
        system.bus.attach_probe(probe)
        system.install_image(0, bytes(IMAGE_SIZE))
        for access in trace:
            system.step(access)
        prof = profile_probe(probe)
        baseline = SecureSystem(cache_config=CACHE, mem_config=MEM)
        baseline.install_image(0, bytes(IMAGE_SIZE))
        base_report = baseline.run(list(trace))
        rows.append({
            "design": label,
            "verdict": classify_pattern(probe),
            "seq_fraction": round(prof.sequential_fraction, 6),
            "working_set": prof.distinct_addresses,
            "overhead":
                round(system.report("x").overhead_vs(base_report), 6),
        })
    return {"rows": rows}


def task_gi_reordering(ctx: TaskContext) -> dict:
    trace = sequential_code(ctx.n(N_ACCESSES), code_size=IMAGE_SIZE)
    rows = []
    for label, reorder in (("chained layout", False),
                           ("chained + reordered", True)):
        result = measure(
            "gi", trace,
            engine_params={"region_size": 512, "authenticate": False,
                           "reorder": reorder},
            image=bytes(IMAGE_SIZE), cache_config=CACHE, mem_config=MEM,
        )
        rows.append({"design": label, **overhead_metrics(result)})
    return {"rows": rows}


def render(results: dict) -> str:
    rows = results["scrambling-probe"]["rows"]
    probe = format_table(
        ["design", "probe verdict", "sequential transitions",
         "working set (lines)", "overhead"],
        [[r["design"], r["verdict"], f"{r['seq_fraction']:.0%}",
          r["working_set"], format_percent(r["overhead"])] for r in rows],
        title="E18a: line-address scrambling vs the pattern probe",
    )
    rrows = results["gi-reordering"]["rows"]
    reorder = format_table(
        ["design", "sequential-code overhead"],
        [[r["design"], format_percent(r["overhead"])] for r in rrows],
        title="E18b: GI block reordering forfeits the chain shortcut",
    )
    return probe + "\n\n" + reorder


def check(results: dict) -> None:
    clear, hidden = results["scrambling-probe"]["rows"]
    assert clear["verdict"] == "sequential"
    assert hidden["verdict"] == "random"
    # Cheap: a cycle per transfer, no crypto added.
    assert hidden["overhead"] - clear["overhead"] < 0.05
    # And honest: the working set stays fully visible.
    assert hidden["working_set"] >= clear["working_set"] - 8
    chained, reordered = results["gi-reordering"]["rows"]
    assert reordered["overhead"] > chained["overhead"]


EXPERIMENT = Experiment(
    id="e18",
    title="Address confidentiality: scrambling and reordering",
    section="extension of §3",
    tasks={"scrambling-probe": task_scrambling_probe,
           "gi-reordering": task_gi_reordering},
    render=render,
    check=check,
)
