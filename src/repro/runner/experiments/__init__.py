"""The declarative experiment registry: one module per survey experiment.

Each module defines task functions, a renderer, a checker, and an
``EXPERIMENT`` object; this package collects them into :data:`EXPERIMENTS`
for the runner, the CLI and the benches to discover.
"""

from __future__ import annotations

from typing import Dict

from ..base import Experiment
from . import (
    e01, e02, e03, e04, e05, e06, e07, e08, e09,
    e10, e11, e12, e13, e14, e15, e16, e17, e18, e19,
)

__all__ = ["EXPERIMENTS", "get_experiment"]

#: id -> Experiment, in survey order.
EXPERIMENTS: Dict[str, Experiment] = {
    module.EXPERIMENT.id: module.EXPERIMENT
    for module in (
        e01, e02, e03, e04, e05, e06, e07, e08, e09,
        e10, e11, e12, e13, e14, e15, e16, e17, e18, e19,
    )
}


def get_experiment(experiment_id: str) -> Experiment:
    """Look up an experiment by id ("e01" … "e19")."""
    try:
        return EXPERIMENTS[experiment_id]
    except KeyError:
        known = ", ".join(sorted(EXPERIMENTS))
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known: {known}"
        ) from None
