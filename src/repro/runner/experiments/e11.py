"""E11 — §3 (AEGIS [14]): per-cache-line AES-CBC, the 25% overhead and
the birthday-proof IVs.

Paper claims reproduced:
* "the ciphering block chain corresponds to a cache block, thus allowing
  random access to external memory" — AEGIS's random-access overhead stays
  bounded where whole-region chaining (E08) explodes;
* "they estimate the performance overhead induced by the encryption engine
  to 25%" — the mixed-workload overhead lands in that neighbourhood;
* "a pipelined AES (300,000 gates)" — the area estimate;
* IV "composed by the block address and by a random vector; to thwart the
  birthday attack it is possible to replace the random vector by a
  counter" — collision statistics for both modes.
"""

from __future__ import annotations

from ...analysis import format_gates, format_percent, format_table
from ...attacks import (
    collision_probability,
    count_collisions,
    expected_writes_to_collision,
)
from ...core.registry import make_engine
from ...crypto import DRBG
from ...traces import WORKLOAD_NAMES, make_workload, sequential_code
from ..base import Experiment, TaskContext
from .common import N_ACCESSES, clamp, measure, overhead_metrics


def task_overheads(ctx: TaskContext) -> dict:
    # Full-length traces even in quick mode: the ~25% bracketing claim
    # needs the low-miss-rate loop workloads to look low-miss, which short
    # traces (cold misses dominant) destroy.
    n = N_ACCESSES
    workloads = {
        # Mostly cache-resident loop: realistic low miss rate.
        "loop-resident": sequential_code(2 * n, code_size=2048),
        "loop-spill": sequential_code(2 * n, code_size=8192),
    }
    workloads.update(
        (name, make_workload(name, n=n)) for name in WORKLOAD_NAMES
    )
    rows = []
    for name, trace in workloads.items():
        result = measure("aegis", trace, workload=name)
        rows.append({"workload": name, **overhead_metrics(result)})
    return {"rows": rows}


def task_random_access(ctx: TaskContext) -> dict:
    trace = clamp(make_workload("data-random", n=ctx.n(N_ACCESSES)),
                  32 * 1024)
    aegis = measure("aegis", trace)
    chained = measure(
        "gi", trace,
        engine_params={"region_size": 4096, "authenticate": False},
        image=bytes(32 * 1024),
    )
    return {
        "aegis": overhead_metrics(aegis),
        "chained": overhead_metrics(chained),
    }


def task_iv_birthday(ctx: TaskContext) -> dict:
    n_writes, vector_bits = 600, 16
    rows = []
    for mode in ("random", "counter"):
        engine = make_engine("aegis", iv_mode=mode,
                             vector_bits=vector_bits, rng=DRBG(31))
        line = bytes(32)
        for i in range(n_writes):
            engine.encrypt_line((i % 64) * 32, line)
        rows.append({
            "iv_mode": mode,
            "collisions": count_collisions(engine.issued_vectors),
            # A counter cannot repeat before wrapping at 2^bits writes.
            "predicted_p": round(
                collision_probability(n_writes, vector_bits)
                if mode == "random" else 0.0, 6),
        })
    return {
        "n_writes": n_writes,
        "vector_bits": vector_bits,
        "expected_writes_to_collision":
            round(expected_writes_to_collision(vector_bits), 3),
        "rows": rows,
    }


def task_area(ctx: TaskContext) -> dict:
    area = make_engine("aegis").area()
    return {"total": area.total, "items": dict(area.items)}


def render(results: dict) -> str:
    parts = [format_table(
        ["workload", "AEGIS overhead"],
        [[r["workload"], format_percent(r["overhead"])]
         for r in results["overheads"]["rows"]],
        title="E11a: AEGIS per-line AES-CBC overhead (survey: ~25%)",
    )]
    ra = results["random-access"]
    parts.append(format_table(
        ["engine", "random-access overhead"],
        [["AEGIS (chain = cache line)",
          format_percent(ra["aegis"]["overhead"])],
         ["GI (chain = 4 KiB region)",
          format_percent(ra["chained"]["overhead"])]],
        title="E11b: per-line chaining preserves random access (survey §3)",
    ))
    iv = results["iv-birthday"]
    parts.append(format_table(
        ["IV mode", "observed collisions", "predicted P(collision)"],
        [[r["iv_mode"], r["collisions"], f"{r['predicted_p']:.2f}"]
         for r in iv["rows"]],
        title=f"E11c: random vs counter vector, {iv['vector_bits']}-bit, "
              f"{iv['n_writes']} writes (survey §3)",
    ))
    area = results["area"]
    parts.append(format_table(
        ["component", "gates"],
        [[label, format_gates(g)] for label, g in
         sorted(area["items"].items(), key=lambda kv: -kv[1])],
        title="E11d: AEGIS area (survey: 300k-gate pipelined AES)",
    ))
    return "\n\n".join(parts)


def check(results: dict) -> None:
    values = [r["overhead"] for r in results["overheads"]["rows"]]
    # The suite brackets the published 25% figure.
    assert min(values) < 0.25 < max(values) * 1.5
    assert sum(values) / len(values) < 1.0
    ra = results["random-access"]
    assert ra["chained"]["overhead"] > 10 * ra["aegis"]["overhead"]
    iv = results["iv-birthday"]
    by_mode = {r["iv_mode"]: r for r in iv["rows"]}
    # Random vectors collide at the birthday scale; counters never do.
    assert by_mode["random"]["collisions"] > 0
    assert by_mode["counter"]["collisions"] == 0
    assert iv["expected_writes_to_collision"] < iv["n_writes"]
    assert results["area"]["items"]["aes_pipelined"] == 300_000


EXPERIMENT = Experiment(
    id="e11",
    title="AEGIS per-line AES-CBC; IV birthday bounds",
    section="§3",
    tasks={
        "overheads": task_overheads,
        "random-access": task_random_access,
        "iv-birthday": task_iv_birthday,
        "area": task_area,
    },
    render=render,
    check=check,
)
