"""E09 — §3 (Gilmont et al. [3]): fetch prediction + pipelined 3DES.

Paper claims reproduced:
* "They assume to keep the deciphering cost under 2,5% in term of
  performance cost" — holds on the workload class the paper scopes
  (static, sequential code) and degrades with branchiness;
* "this work only addresses static code ciphering and consequently authors
  are not confronted to smaller-than-block-size memory operations" — the
  write-side blind spot measured on a write-bearing workload;
* ablation: predictor depth.
"""

from __future__ import annotations

from ...analysis import ascii_plot, format_percent, format_table
from ...crypto import DRBG
from ...sim import CacheConfig, MemoryConfig, WritePolicy
from ...traces import branchy_code, make_workload
from ..base import Experiment, TaskContext
from .common import N_ACCESSES, measure, overhead_metrics


def task_branchiness(ctx: TaskContext) -> dict:
    p_takens = (0.0, 0.15, 0.5) if ctx.quick else (0.0, 0.05, 0.15, 0.3, 0.5)
    rows = []
    for p in p_takens:
        trace = branchy_code(N_ACCESSES, DRBG(100), p_taken=p,
                             code_size=1 << 18)
        result = measure("gilmont", trace)
        rows.append({"p_taken": p, **overhead_metrics(result)})
    return {"rows": rows}


def task_depth(ctx: TaskContext) -> dict:
    depths = (0, 4) if ctx.quick else (0, 1, 2, 4)
    trace = branchy_code(N_ACCESSES, DRBG(101), p_taken=0.1,
                         code_size=1 << 18)
    rows = []
    for depth in depths:
        result = measure("gilmont", trace,
                         engine_params={"prediction_depth": depth})
        rows.append({"depth": depth, **overhead_metrics(result)})
    return {"rows": rows}


def task_write_blind_spot(ctx: TaskContext) -> dict:
    """Data writes through the engine: the paper never measured these."""
    trace = make_workload("write-heavy", n=ctx.n(N_ACCESSES))
    wt_cache = CacheConfig(
        size=4096, line_size=32, associativity=2,
        write_policy=WritePolicy.WRITE_THROUGH, write_allocate=False,
    )
    result = measure(
        "gilmont", trace, cache_config=wt_cache,
        mem_config=MemoryConfig(size=1 << 21, latency=40),
        write_buffer=False,
    )
    return overhead_metrics(result)


def render(results: dict) -> str:
    rows = results["branchiness"]["rows"]
    parts = [format_table(
        ["taken-branch probability", "overhead"],
        [[f"{r['p_taken']:.2f}", format_percent(r["overhead"])]
         for r in rows],
        title="E09: Gilmont fetch prediction vs branchiness (survey §3)",
    )]
    parts.append(ascii_plot(
        {"gilmont-3des": [(r["p_taken"], 100 * r["overhead"])
                          for r in rows]},
        title="E09 figure: overhead (%) vs taken-branch probability",
        x_label="p(taken)", y_label="%",
    ))
    parts.append(format_table(
        ["prediction depth", "overhead"],
        [[r["depth"], format_percent(r["overhead"])]
         for r in results["depth"]["rows"]],
        title="E09 ablation: predictor depth on lightly branchy code",
    ))
    w = results["write-blind-spot"]
    parts.append(format_table(
        ["metric", "value"],
        [["write-heavy overhead", format_percent(w["overhead"])],
         ["read-modify-writes", w["rmw_operations"]]],
        title="E09b: the write-side blind spot (survey §3)",
    ))
    return "\n\n".join(parts)


def check(results: dict) -> None:
    rows = results["branchiness"]["rows"]
    by_p = {r["p_taken"]: r["overhead"] for r in rows}
    # The published claim, within its scope: sequential code < 2.5%.
    assert by_p[0.0] < 0.025
    # Branchy code defeats the predictor: monotone degradation.
    overheads = [r["overhead"] for r in rows]
    assert overheads == sorted(overheads)
    assert by_p[0.5] > 0.05
    depth_rows = results["depth"]["rows"]
    assert depth_rows[-1]["overhead"] < depth_rows[0]["overhead"]
    w = results["write-blind-spot"]
    # Far outside the paper's 2.5% envelope once writes appear.
    assert w["overhead"] > 0.10
    assert w["rmw_operations"] > 0


EXPERIMENT = Experiment(
    id="e09",
    title="Gilmont fetch prediction + pipelined 3DES",
    section="§3",
    tasks={
        "branchiness": task_branchiness,
        "depth": task_depth,
        "write-blind-spot": task_write_blind_spot,
    },
    render=render,
    check=check,
)
