"""Parallel experiment execution with memoization and structured metrics.

:class:`ExperimentRunner` discovers experiments in the declarative
registry (:mod:`repro.runner.experiments`), fans their tasks out over a
``multiprocessing`` pool, memoizes completed tasks on disk, and assembles
two documents:

* **metrics** — deterministic, machine-readable: per-task simulated
  metrics (cycles, bus transactions, cache hit rates, bytes enciphered,
  …) plus the per-experiment claim checks.  Byte-identical regardless of
  worker count or cache state, so it can be committed as a regression
  baseline (``BENCH_metrics.json``).
* **profile** — non-deterministic observability: wall time per task,
  worker count, cache hit/miss counts.

Determinism comes from the task model: each task's seed is derived from
its identity (:func:`repro.runner.base.task_seed`), tasks share no state,
and results are assembled in sorted task order no matter which worker
finished first.
"""

from __future__ import annotations

import json
import multiprocessing
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..obs import CounterSink, observability_section, scope
from .base import Experiment, TaskContext, task_seed
from .cache import ResultCache, stable_floats

__all__ = ["ExperimentRunner", "RunResult", "fork_pool",
           "to_canonical_json"]

METRICS_SCHEMA = "repro-bench-metrics/3"

#: (experiment_id, task_name, quick, observe) — everything a worker needs.
_TaskSpec = Tuple[str, str, bool, bool]


def _execute_task(spec: _TaskSpec) -> Tuple[str, str, dict, float]:
    """Worker entry point: run one task, return its result and wall time.

    Module-level so it pickles by reference; the experiment registry is
    re-resolved inside the worker process.  With ``observe`` set, the task
    runs under an ambient :class:`CounterSink` scope, so every simulator
    event the task causes is aggregated into its ``observability`` block.
    """
    exp_id, task_name, quick, observe = spec
    from .experiments import get_experiment

    experiment = get_experiment(exp_id)
    ctx = TaskContext(quick=quick, seed=task_seed(exp_id, task_name))
    start = time.perf_counter()
    if observe:
        with scope(CounterSink()) as sink:
            metrics = experiment.tasks[task_name](ctx)
        observability = observability_section(sink)
    else:
        metrics = experiment.tasks[task_name](ctx)
        observability = None
    wall = time.perf_counter() - start
    # Round-trip through JSON so cached and fresh results are the exact
    # same object shape (tuples -> lists, int keys -> str keys), and
    # canonicalize floats so they are the same bytes (the cache applies
    # the identical normalization on write).
    value = {"metrics": metrics, "observability": observability}
    return exp_id, task_name, stable_floats(json.loads(json.dumps(value))), \
        wall


def to_canonical_json(document: dict) -> str:
    """Stable serialized form: sorted keys, fixed indent, one trailing \\n."""
    return json.dumps(document, sort_keys=True, indent=2) + "\n"


def fork_pool(workers: int):
    """A fork-context process pool with a pre-warmed kernel registry.

    Fork keeps ``sys.path`` (and everything already imported) intact in
    the children; expanding every engine's cipher schedules first means
    they inherit a warm kernel registry instead of each re-deriving the
    same key schedules.  Shared by the experiment runner and the
    campaign coordinator.
    """
    from ..core.registry import warm_kernel_registry
    warm_kernel_registry()
    return multiprocessing.get_context("fork").Pool(processes=workers)


@dataclass
class RunResult:
    """Everything one runner invocation produced."""

    metrics: dict                      # deterministic document
    profile: dict                      # wall times, cache stats
    renders: Dict[str, str] = field(default_factory=dict)

    @property
    def all_checks_passed(self) -> bool:
        return all(
            exp["checks"]["passed"] in (True, None)
            for exp in self.metrics["experiments"].values()
        )

    def metrics_json(self) -> str:
        return to_canonical_json(self.metrics)


class ExperimentRunner:
    """Run a set of registry experiments, possibly in parallel.

    Parameters
    ----------
    experiments:
        Experiment ids to run (default: every registered experiment).
    workers:
        Process count; 1 runs everything in-process (the reference path —
        any other worker count must produce byte-identical metrics).
    quick:
        Scaled-down traces for sub-minute full-suite runs.
    cache_dir:
        Directory for the on-disk result cache; ``None`` disables caching.
    render:
        Also produce each experiment's human-readable tables.
    observe:
        Attach a per-task :class:`repro.obs.CounterSink` and publish the
        aggregated event counters as the metrics document's
        ``observability`` sections (default on; the counters are
        deterministic, so they belong in the committed document).
    progress:
        Optional callable receiving one line per completed task.
    """

    def __init__(
        self,
        experiments: Optional[Sequence[str]] = None,
        workers: int = 1,
        quick: bool = False,
        cache_dir: Optional[Path] = Path(".bench_cache"),
        render: bool = False,
        observe: bool = True,
        progress: Optional[Callable[[str], None]] = None,
    ):
        from .experiments import EXPERIMENTS, get_experiment

        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        ids = sorted(experiments) if experiments else sorted(EXPERIMENTS)
        self.experiments: List[Experiment] = [get_experiment(i) for i in ids]
        self.workers = workers
        self.quick = quick
        self.cache = ResultCache(Path(cache_dir)) if cache_dir else None
        self.render = render
        self.observe = observe
        self._progress = progress or (lambda line: None)

    # -- execution ---------------------------------------------------------

    def _task_specs(self) -> List[_TaskSpec]:
        return [
            (exp.id, task_name, self.quick, self.observe)
            for exp in self.experiments
            for task_name in sorted(exp.tasks)
        ]

    def _cache_key(self, exp_id: str, task_name: str) -> str:
        ctx = TaskContext(quick=self.quick, seed=task_seed(exp_id, task_name))
        # The schema and the observe flag are part of the key: a document
        # shape change or a counters-on/off change must not replay stale
        # entries of the other shape.  The quick flag is passed explicitly
        # so scaled-down results can never leak into full-scale documents.
        return ResultCache.task_key(
            exp_id, task_name, ctx.key(),
            schema=f"{METRICS_SCHEMA};observe={self.observe}",
            quick=self.quick,
        )

    def run(self) -> RunResult:
        suite_start = time.perf_counter()
        results: Dict[str, Dict[str, dict]] = {
            exp.id: {} for exp in self.experiments
        }
        walls: Dict[str, float] = {}

        pending: List[_TaskSpec] = []
        cache_stats: Dict[str, Dict[str, int]] = {
            exp.id: {"hits": 0, "misses": 0} for exp in self.experiments
        }
        for spec in self._task_specs():
            exp_id, task_name = spec[0], spec[1]
            cached = None
            if self.cache is not None:
                cached = self.cache.get(self._cache_key(exp_id, task_name))
            if cached is not None and "metrics" in cached:
                cache_stats[exp_id]["hits"] += 1
                results[exp_id][task_name] = cached
                walls[f"{exp_id}:{task_name}"] = 0.0
                self._progress(f"{exp_id}:{task_name}  [cached]")
            else:
                if self.cache is not None:
                    cache_stats[exp_id]["misses"] += 1
                pending.append(spec)

        for exp_id, task_name, value, wall in self._execute(pending):
            results[exp_id][task_name] = value
            # Microsecond resolution: sub-millisecond tasks (e.g. the
            # kernel microbench summaries) must not profile as 0.0.
            walls[f"{exp_id}:{task_name}"] = round(wall, 6)
            if self.cache is not None:
                self.cache.put(self._cache_key(exp_id, task_name), value)
            self._progress(f"{exp_id}:{task_name}  [{wall:.2f}s]")

        return self._assemble(results, walls, cache_stats,
                              time.perf_counter() - suite_start)

    def _execute(self, pending: List[_TaskSpec]):
        """Yield completed (exp_id, task, metrics, wall) for pending tasks."""
        if not pending:
            return
        if self.workers == 1:
            for spec in pending:
                yield _execute_task(spec)
            return
        # chunksize 1 keeps long tasks load-balanced across the pool.
        with fork_pool(self.workers) as pool:
            for item in pool.imap_unordered(_execute_task, pending,
                                            chunksize=1):
                yield item

    # -- assembly ----------------------------------------------------------

    def _assemble(self, results, walls, cache_stats, total_wall) -> RunResult:
        from ..obs import merge_observability

        experiments_doc = {}
        published: Dict[str, object] = {}
        renders: Dict[str, str] = {}
        for exp in self.experiments:
            exp_values = results[exp.id]
            exp_metrics = {name: value["metrics"]
                           for name, value in exp_values.items()}
            doc = {
                "title": exp.title,
                "section": exp.section,
                "checks": exp.checks_passed(exp_metrics),
                "tasks": {name: exp_metrics[name]
                          for name in sorted(exp_metrics)},
            }
            task_obs = {
                name: exp_values[name]["observability"]
                for name in sorted(exp_values)
                if exp_values[name].get("observability") is not None
            }
            if task_obs:
                doc["observability"] = {
                    "tasks": task_obs,
                    "total": merge_observability(task_obs.values()),
                }
            experiments_doc[exp.id] = doc
            if exp.publish is not None:
                key, value = exp.publish(exp_metrics)
                published[key] = json.loads(json.dumps(value))
            if self.render and exp.render is not None:
                renders[exp.id] = exp.render(exp_metrics)

        metrics = {
            "schema": METRICS_SCHEMA,
            "quick": self.quick,
            "experiments": experiments_doc,
        }
        metrics.update(sorted(published.items()))
        profile = {
            "workers": self.workers,
            "wall_seconds": round(total_wall, 3),
            "cache": {
                "hits": self.cache.hits if self.cache else 0,
                "misses": self.cache.misses if self.cache else 0,
                "dir": str(self.cache.root) if self.cache else None,
                "per_experiment": {
                    exp_id: dict(stats)
                    for exp_id, stats in sorted(cache_stats.items())
                },
            },
            "task_wall_seconds": dict(sorted(walls.items())),
        }
        return RunResult(metrics=metrics, profile=profile, renders=renders)
