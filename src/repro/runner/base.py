"""Declarative experiment model for the runner.

An :class:`Experiment` is a registry entry describing one of the survey's
experiments (E01–E18): metadata, a set of independent **tasks** (the unit
of parallelism and caching), a renderer producing the human tables the
benches used to print, and a checker asserting the shape of the paper's
claim.

Task functions are module-level callables ``fn(ctx: TaskContext) -> dict``
returning JSON-serializable metrics only — that is what makes them
executable in worker processes, memoizable on disk, and byte-for-byte
deterministic across worker counts.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Callable, Dict, Mapping, Optional, Tuple

__all__ = ["TaskContext", "Experiment", "task_seed"]


def task_seed(*identity: str) -> int:
    """Deterministic per-task seed, stable across processes and sessions.

    Accepts any identity path — ``task_seed("e01", "cost-gap")`` for
    registry experiments, ``task_seed("campaign", kind, point_name)``
    for campaign design points — and folds it to a 31-bit seed.  The
    two-argument form hashes exactly as it always has.
    """
    return zlib.crc32(":".join(identity).encode()) & 0x7FFFFFFF


@dataclass(frozen=True)
class TaskContext:
    """Execution parameters handed to every task function.

    ``seed`` is the task's deterministic seed (derived from its identity,
    never from wall clock or PID).  ``quick`` selects the scaled-down
    variant used by ``make bench-quick`` and the test suite.
    """

    quick: bool = False
    seed: int = 0

    def n(self, full: int, quick: Optional[int] = None) -> int:
        """Scale a trace length: ``full`` normally, ``quick`` (or full/5)
        in quick mode."""
        if not self.quick:
            return full
        return quick if quick is not None else max(200, full // 5)

    def key(self) -> Dict[str, object]:
        """The context's contribution to the memoization key."""
        return {"quick": self.quick, "seed": self.seed}


#: A task computes one JSON-serializable metrics dict.
TaskFn = Callable[[TaskContext], dict]
#: Results of a whole experiment: task name -> metrics dict.
Results = Dict[str, dict]


@dataclass(frozen=True)
class Experiment:
    """One survey experiment: metadata + tasks + presentation + checks."""

    id: str                             # "e01" … "e18"
    title: str
    section: str                        # survey section / figure
    tasks: Mapping[str, TaskFn] = field(default_factory=dict)
    #: Produce the human-readable tables from the task results.
    render: Optional[Callable[[Results], str]] = None
    #: Assert the shape of the paper's claim; raises AssertionError.
    check: Optional[Callable[[Results], None]] = None
    #: Optionally promote a derived document to the top level of the
    #: metrics file: returns ``(key, json-serializable value)`` computed
    #: from the task results (e.g. E19's ``detection_matrix``).
    publish: Optional[Callable[[Results], "Tuple[str, object]"]] = None

    def run(self, ctx_base: TaskContext = TaskContext()) -> Results:
        """Run every task serially (in-process reference path)."""
        results: Results = {}
        for name in sorted(self.tasks):
            ctx = TaskContext(quick=ctx_base.quick,
                              seed=task_seed(self.id, name))
            results[name] = self.tasks[name](ctx)
        return results

    def checks_passed(self, results: Results) -> Dict[str, object]:
        """Run :attr:`check` and report the outcome as metrics."""
        if self.check is None:
            return {"passed": None, "error": None}
        try:
            self.check(results)
            return {"passed": True, "error": None}
        except AssertionError as exc:
            return {"passed": False, "error": str(exc) or "assertion failed"}
