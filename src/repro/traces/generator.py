"""Synthetic workload generators.

The surveyed overheads are driven by three workload properties: miss rate,
sequentiality (how often control flow jumps, §2.2's "random data access
problem"), and write mix (§2.2's smaller-than-block write penalty).  Each
generator here sweeps one of those axes; :mod:`repro.traces.workloads` names
the standard combinations the experiments use.

All generators are deterministic given a :class:`repro.crypto.DRBG` seed.
"""

from __future__ import annotations

from typing import Optional

from ..crypto.drbg import DRBG
from .trace import Access, AccessKind, Trace

__all__ = [
    "sequential_code",
    "branchy_code",
    "data_stream",
    "random_data",
    "pointer_chase",
    "write_burst",
    "mixed_workload",
]


def sequential_code(
    n: int,
    base: int = 0,
    step: int = 4,
    code_size: int = 64 * 1024,
) -> Trace:
    """Straight-line instruction fetches wrapping within ``code_size``.

    The best case for Gilmont's fetch predictor: the next line is always the
    one the predictor guessed.
    """
    if step <= 0:
        raise ValueError(f"step must be positive, got {step}")
    return [
        Access(AccessKind.FETCH, base + (i * step) % code_size, step)
        for i in range(n)
    ]


def branchy_code(
    n: int,
    rng: DRBG,
    base: int = 0,
    p_taken: float = 0.15,
    code_size: int = 64 * 1024,
    step: int = 4,
) -> Trace:
    """Instruction fetches with probability ``p_taken`` of jumping.

    Jump targets are uniform within the code image — the survey's JUMP
    problem for chained ciphering modes and fetch predictors.
    """
    if not 0.0 <= p_taken <= 1.0:
        raise ValueError(f"p_taken must be in [0, 1], got {p_taken}")
    trace: Trace = []
    pc = base
    for _ in range(n):
        trace.append(Access(AccessKind.FETCH, pc, step))
        if rng.random() < p_taken:
            pc = base + (rng.randbelow(code_size // step)) * step
        else:
            pc = base + ((pc - base) + step) % code_size
    return trace


def data_stream(
    n: int,
    rng: DRBG,
    base: int = 1 << 20,
    working_set: int = 256 * 1024,
    write_fraction: float = 0.3,
    size: int = 4,
    locality: float = 0.85,
) -> Trace:
    """Loads and stores over a working set with tunable spatial locality.

    With probability ``locality`` the next access lands near the previous
    one (same or next line); otherwise it jumps uniformly in the set.
    """
    if not 0.0 <= write_fraction <= 1.0:
        raise ValueError(f"write_fraction must be in [0, 1], got {write_fraction}")
    if not 0.0 <= locality <= 1.0:
        raise ValueError(f"locality must be in [0, 1], got {locality}")
    trace: Trace = []
    addr = base
    span = working_set // size
    for _ in range(n):
        kind = AccessKind.STORE if rng.random() < write_fraction else AccessKind.LOAD
        trace.append(Access(kind, addr, size))
        if rng.random() < locality:
            addr = base + ((addr - base) + size) % working_set
        else:
            addr = base + rng.randbelow(span) * size
    return trace


def random_data(
    n: int,
    rng: DRBG,
    base: int = 1 << 20,
    working_set: int = 1 << 20,
    write_fraction: float = 0.0,
    size: int = 4,
) -> Trace:
    """Uniformly random accesses — the cache-hostile extreme."""
    return data_stream(
        n, rng, base=base, working_set=working_set,
        write_fraction=write_fraction, size=size, locality=0.0,
    )


def pointer_chase(
    n: int,
    rng: DRBG,
    base: int = 1 << 20,
    nodes: int = 4096,
    node_size: int = 32,
) -> Trace:
    """Follow a random permutation of nodes — serial, unpredictable loads."""
    order = list(range(nodes))
    rng.shuffle(order)
    trace: Trace = []
    node = 0
    for _ in range(n):
        trace.append(Access(AccessKind.LOAD, base + order[node] * node_size, 4))
        node = (node + 1) % nodes
    return trace


def write_burst(
    n: int,
    base: int = 1 << 20,
    write_size: int = 4,
    stride: Optional[int] = None,
    region: int = 512 * 1024,
) -> Trace:
    """Back-to-back stores of ``write_size`` bytes — isolates the §2.2
    read-modify-write penalty (E04)."""
    if stride is None:
        stride = write_size
    return [
        Access(AccessKind.STORE, base + (i * stride) % region, write_size)
        for i in range(n)
    ]


def mixed_workload(
    n: int,
    rng: DRBG,
    fetch_fraction: float = 0.7,
    write_fraction: float = 0.1,
    p_taken: float = 0.12,
    code_size: int = 128 * 1024,
    working_set: int = 256 * 1024,
) -> Trace:
    """Interleaved fetch/load/store stream resembling embedded execution.

    ``fetch_fraction`` of accesses are instruction fetches following a
    branchy PC; the rest are data accesses with ``write_fraction`` stores.
    """
    code = branchy_code(n, rng.fork("code"), p_taken=p_taken, code_size=code_size)
    data_n = max(1, int(n * (1 - fetch_fraction)))
    wf = write_fraction / max(1e-9, (1 - fetch_fraction))
    data = data_stream(
        data_n, rng.fork("data"),
        write_fraction=min(1.0, wf), working_set=working_set,
    )
    trace: Trace = []
    di = 0
    for i, fetch in enumerate(code):
        if len(trace) >= n:
            break
        trace.append(fetch)
        # Insert a data access after the right fraction of fetches.
        if rng.random() < (1 - fetch_fraction) / max(1e-9, fetch_fraction) \
                and di < len(data) and len(trace) < n:
            trace.append(data[di])
            di += 1
    return trace[:n]
