"""Synthetic workload generators.

The surveyed overheads are driven by three workload properties: miss rate,
sequentiality (how often control flow jumps, §2.2's "random data access
problem"), and write mix (§2.2's smaller-than-block write penalty).  Each
generator here sweeps one of those axes; :mod:`repro.traces.workloads` names
the standard combinations the experiments use.

Every generator exists in two forms: ``iter_<name>`` yields accesses
lazily (the streaming form — pair with :func:`repro.traces.stream.chunked`
to drive a 10^8-access run in bounded memory), and ``<name>`` materializes
the same accesses as a list.  The list form is exactly
``list(iter_<name>(...))``, so both draw from the DRBG in the same order
and produce byte-identical traces.

The ``iter_phased_program`` / ``iter_multi_tenant`` / ``iter_dma_bursts``
generators model long-horizon behaviours (phase changes, tenant
interleaving, DMA burst trains) that only show up at lengths the
materialized path cannot hold; they have no list form on purpose.

All generators are deterministic given a :class:`repro.crypto.DRBG` seed.
"""

from __future__ import annotations

from typing import Iterator, Optional

from ..crypto.drbg import DRBG
from .trace import Access, AccessKind, Trace

__all__ = [
    "sequential_code",
    "branchy_code",
    "data_stream",
    "random_data",
    "pointer_chase",
    "write_burst",
    "mixed_workload",
    "iter_sequential_code",
    "iter_branchy_code",
    "iter_data_stream",
    "iter_random_data",
    "iter_pointer_chase",
    "iter_write_burst",
    "iter_mixed_workload",
    "iter_phased_program",
    "iter_multi_tenant",
    "iter_dma_bursts",
    "dma_burst_chunks",
]


def _check_count(n: int) -> None:
    if n <= 0:
        raise ValueError(f"n must be a positive access count, got {n}")


def iter_sequential_code(
    n: int,
    base: int = 0,
    step: int = 4,
    code_size: int = 64 * 1024,
) -> Iterator[Access]:
    """Straight-line instruction fetches wrapping within ``code_size``.

    The best case for Gilmont's fetch predictor: the next line is always the
    one the predictor guessed.
    """
    _check_count(n)
    if step <= 0:
        raise ValueError(f"step must be positive, got {step}")
    if code_size < step:
        raise ValueError(
            f"code_size must be at least step ({step}), got {code_size}"
        )
    for i in range(n):
        yield Access(AccessKind.FETCH, base + (i * step) % code_size, step)


def sequential_code(
    n: int,
    base: int = 0,
    step: int = 4,
    code_size: int = 64 * 1024,
) -> Trace:
    """Materialized form of :func:`iter_sequential_code`."""
    return list(iter_sequential_code(n, base=base, step=step, code_size=code_size))


def iter_branchy_code(
    n: int,
    rng: DRBG,
    base: int = 0,
    p_taken: float = 0.15,
    code_size: int = 64 * 1024,
    step: int = 4,
) -> Iterator[Access]:
    """Instruction fetches with probability ``p_taken`` of jumping.

    Jump targets are uniform within the code image — the survey's JUMP
    problem for chained ciphering modes and fetch predictors.
    """
    _check_count(n)
    if not 0.0 <= p_taken <= 1.0:
        raise ValueError(f"p_taken must be in [0, 1], got {p_taken}")
    if step <= 0:
        raise ValueError(f"step must be positive, got {step}")
    if code_size < step:
        raise ValueError(
            f"code_size must be at least step ({step}), got {code_size}"
        )
    pc = base
    for _ in range(n):
        yield Access(AccessKind.FETCH, pc, step)
        if rng.random() < p_taken:
            pc = base + (rng.randbelow(code_size // step)) * step
        else:
            pc = base + ((pc - base) + step) % code_size


def branchy_code(
    n: int,
    rng: DRBG,
    base: int = 0,
    p_taken: float = 0.15,
    code_size: int = 64 * 1024,
    step: int = 4,
) -> Trace:
    """Materialized form of :func:`iter_branchy_code`."""
    return list(iter_branchy_code(
        n, rng, base=base, p_taken=p_taken, code_size=code_size, step=step,
    ))


def iter_data_stream(
    n: int,
    rng: DRBG,
    base: int = 1 << 20,
    working_set: int = 256 * 1024,
    write_fraction: float = 0.3,
    size: int = 4,
    locality: float = 0.85,
) -> Iterator[Access]:
    """Loads and stores over a working set with tunable spatial locality.

    With probability ``locality`` the next access lands near the previous
    one (same or next line); otherwise it jumps uniformly in the set.
    """
    _check_count(n)
    if not 0.0 <= write_fraction <= 1.0:
        raise ValueError(f"write_fraction must be in [0, 1], got {write_fraction}")
    if not 0.0 <= locality <= 1.0:
        raise ValueError(f"locality must be in [0, 1], got {locality}")
    if size <= 0:
        raise ValueError(f"size must be positive, got {size}")
    if working_set < size:
        raise ValueError(
            f"working_set must be at least size ({size}), got {working_set}"
        )
    addr = base
    span = working_set // size
    for _ in range(n):
        kind = AccessKind.STORE if rng.random() < write_fraction else AccessKind.LOAD
        yield Access(kind, addr, size)
        if rng.random() < locality:
            addr = base + ((addr - base) + size) % working_set
        else:
            addr = base + rng.randbelow(span) * size


def data_stream(
    n: int,
    rng: DRBG,
    base: int = 1 << 20,
    working_set: int = 256 * 1024,
    write_fraction: float = 0.3,
    size: int = 4,
    locality: float = 0.85,
) -> Trace:
    """Materialized form of :func:`iter_data_stream`."""
    return list(iter_data_stream(
        n, rng, base=base, working_set=working_set,
        write_fraction=write_fraction, size=size, locality=locality,
    ))


def iter_random_data(
    n: int,
    rng: DRBG,
    base: int = 1 << 20,
    working_set: int = 1 << 20,
    write_fraction: float = 0.0,
    size: int = 4,
) -> Iterator[Access]:
    """Uniformly random accesses — the cache-hostile extreme."""
    return iter_data_stream(
        n, rng, base=base, working_set=working_set,
        write_fraction=write_fraction, size=size, locality=0.0,
    )


def random_data(
    n: int,
    rng: DRBG,
    base: int = 1 << 20,
    working_set: int = 1 << 20,
    write_fraction: float = 0.0,
    size: int = 4,
) -> Trace:
    """Materialized form of :func:`iter_random_data`."""
    return list(iter_random_data(
        n, rng, base=base, working_set=working_set,
        write_fraction=write_fraction, size=size,
    ))


def iter_pointer_chase(
    n: int,
    rng: DRBG,
    base: int = 1 << 20,
    nodes: int = 4096,
    node_size: int = 32,
) -> Iterator[Access]:
    """Follow a random permutation of nodes — serial, unpredictable loads."""
    _check_count(n)
    if nodes <= 0:
        raise ValueError(f"nodes must be positive, got {nodes}")
    order = list(range(nodes))
    rng.shuffle(order)
    node = 0
    for _ in range(n):
        yield Access(AccessKind.LOAD, base + order[node] * node_size, 4)
        node = (node + 1) % nodes


def pointer_chase(
    n: int,
    rng: DRBG,
    base: int = 1 << 20,
    nodes: int = 4096,
    node_size: int = 32,
) -> Trace:
    """Materialized form of :func:`iter_pointer_chase`."""
    return list(iter_pointer_chase(
        n, rng, base=base, nodes=nodes, node_size=node_size,
    ))


def iter_write_burst(
    n: int,
    base: int = 1 << 20,
    write_size: int = 4,
    stride: Optional[int] = None,
    region: int = 512 * 1024,
) -> Iterator[Access]:
    """Back-to-back stores of ``write_size`` bytes — isolates the §2.2
    read-modify-write penalty (E04)."""
    _check_count(n)
    if write_size <= 0:
        raise ValueError(f"write_size must be positive, got {write_size}")
    if stride is None:
        stride = write_size
    for i in range(n):
        yield Access(AccessKind.STORE, base + (i * stride) % region, write_size)


def write_burst(
    n: int,
    base: int = 1 << 20,
    write_size: int = 4,
    stride: Optional[int] = None,
    region: int = 512 * 1024,
) -> Trace:
    """Materialized form of :func:`iter_write_burst`."""
    return list(iter_write_burst(
        n, base=base, write_size=write_size, stride=stride, region=region,
    ))


def iter_mixed_workload(
    n: int,
    rng: DRBG,
    fetch_fraction: float = 0.7,
    write_fraction: float = 0.1,
    p_taken: float = 0.12,
    code_size: int = 128 * 1024,
    working_set: int = 256 * 1024,
) -> Iterator[Access]:
    """Interleaved fetch/load/store stream resembling embedded execution.

    ``fetch_fraction`` of accesses are instruction fetches following a
    branchy PC; the rest are data accesses with ``write_fraction`` stores.

    Code and data draw from independent DRBG forks ("code"/"data"), so the
    lazy interleaving here produces the same accesses the materialized
    version always did.
    """
    _check_count(n)
    if not 0.0 < fetch_fraction <= 1.0:
        raise ValueError(f"fetch_fraction must be in (0, 1], got {fetch_fraction}")
    code = iter_branchy_code(
        n, rng.fork("code"), p_taken=p_taken, code_size=code_size,
    )
    data_n = max(1, int(n * (1 - fetch_fraction)))
    wf = write_fraction / max(1e-9, (1 - fetch_fraction))
    data = iter_data_stream(
        data_n, rng.fork("data"),
        write_fraction=min(1.0, wf), working_set=working_set,
    )
    threshold = (1 - fetch_fraction) / max(1e-9, fetch_fraction)
    emitted = 0
    di = 0
    for fetch in code:
        if emitted >= n:
            break
        yield fetch
        emitted += 1
        # Insert a data access after the right fraction of fetches.
        if rng.random() < threshold and di < data_n and emitted < n:
            yield next(data)
            di += 1
            emitted += 1


def mixed_workload(
    n: int,
    rng: DRBG,
    fetch_fraction: float = 0.7,
    write_fraction: float = 0.1,
    p_taken: float = 0.12,
    code_size: int = 128 * 1024,
    working_set: int = 256 * 1024,
) -> Trace:
    """Materialized form of :func:`iter_mixed_workload`."""
    return list(iter_mixed_workload(
        n, rng, fetch_fraction=fetch_fraction, write_fraction=write_fraction,
        p_taken=p_taken, code_size=code_size, working_set=working_set,
    ))


# --------------------------------------------------------------------------
# Long-horizon generators (streaming only).
#
# These model behaviours that need 10^7+ accesses to matter: programs that
# change phase, several tenants time-slicing one bus, and DMA engines
# moving buffers in bursts.  Each draws only a handful of DRBG values per
# phase/slice/burst so generation keeps up with the batched executor.
# --------------------------------------------------------------------------


def iter_phased_program(
    n: int,
    rng: DRBG,
    phase_len: int = 100_000,
    code_size: int = 256 * 1024,
    working_set: int = 256 * 1024,
    data_base: int = 1 << 20,
) -> Iterator[Access]:
    """A program that moves through distinct execution phases.

    Each phase lasts roughly ``phase_len`` accesses (uniform in
    [phase_len/2, 3*phase_len/2)) and is one of: branchy code, a local
    data loop, or a pointer chase.  Phase boundaries are where engines
    with warm predictors or caches lose their state — invisible in short
    traces, dominant at 10^8.
    """
    _check_count(n)
    if phase_len <= 0:
        raise ValueError(f"phase_len must be positive, got {phase_len}")
    emitted = 0
    phase = 0
    while emitted < n:
        length = min(n - emitted,
                     max(1, phase_len // 2 + rng.randbelow(phase_len)))
        shape = rng.randbelow(3)
        sub = rng.fork(f"phase-{phase}")
        if shape == 0:
            source = iter_branchy_code(
                length, sub, p_taken=0.05 + 0.2 * sub.random(),
                code_size=code_size,
            )
        elif shape == 1:
            source = iter_data_stream(
                length, sub, base=data_base, working_set=working_set,
                write_fraction=0.3, locality=0.9,
            )
        else:
            source = iter_pointer_chase(
                length, sub, base=data_base, nodes=4096,
            )
        yield from source
        emitted += length
        phase += 1


def iter_multi_tenant(
    n: int,
    rng: DRBG,
    tenants: int = 4,
    slice_len: int = 64,
    stride: int = 1 << 21,
    code_size: int = 64 * 1024,
    working_set: int = 128 * 1024,
) -> Iterator[Access]:
    """Several tenants time-slicing one encrypted bus.

    Each tenant runs its own mixed workload (independent DRBG fork) in a
    disjoint ``stride``-sized address window; the scheduler hands out
    slices of 1..``slice_len`` accesses to a uniformly chosen tenant.
    Context switches defeat spatial locality across tenants — the
    worst case for fetch predictors and the survey's chained modes.
    """
    _check_count(n)
    if tenants <= 0:
        raise ValueError(f"tenants must be positive, got {tenants}")
    if slice_len <= 0:
        raise ValueError(f"slice_len must be positive, got {slice_len}")
    streams = [
        iter_mixed_workload(
            n, rng.fork(f"tenant-{t}"),
            code_size=code_size, working_set=working_set,
        )
        for t in range(tenants)
    ]
    emitted = 0
    while emitted < n:
        t = rng.randbelow(tenants)
        quantum = min(1 + rng.randbelow(slice_len), n - emitted)
        base = t * stride
        source = streams[t]
        for _ in range(quantum):
            a = next(source)
            yield Access(a.kind, base + a.addr, a.size)
        emitted += quantum


def iter_dma_bursts(
    n: int,
    rng: DRBG,
    base: int = 1 << 20,
    region: int = 1 << 20,
    burst: int = 256,
    size: int = 4,
    read_fraction: float = 0.4,
) -> Iterator[Access]:
    """DMA burst trains: long sequential transfers at random buffer bases.

    Each burst is up to ``burst`` back-to-back same-direction accesses of
    ``size`` bytes from a random ``size``-aligned offset in ``region`` —
    the pattern VLSI's DMA-granular engine and Sealer's in-SRAM AES are
    built around.  Only three DRBG draws per burst, so this is the
    generator of choice for the 10^8-access scaling bench.
    """
    _check_count(n)
    if burst <= 0:
        raise ValueError(f"burst must be positive, got {burst}")
    if size <= 0:
        raise ValueError(f"size must be positive, got {size}")
    if region < size:
        raise ValueError(
            f"region must be at least size ({size}), got {region}"
        )
    if not 0.0 <= read_fraction <= 1.0:
        raise ValueError(f"read_fraction must be in [0, 1], got {read_fraction}")
    span = region // size
    emitted = 0
    while emitted < n:
        length = min(1 + rng.randbelow(burst), n - emitted)
        start = base + rng.randbelow(span) * size
        kind = AccessKind.LOAD if rng.random() < read_fraction else AccessKind.STORE
        for i in range(length):
            yield Access(kind, base + ((start - base) + i * size) % region, size)
        emitted += length


def dma_burst_chunks(
    n: int,
    rng: DRBG,
    chunk_size: int,
    base: int = 1 << 20,
    region: int = 1 << 20,
    burst: int = 256,
    size: int = 4,
    read_fraction: float = 0.4,
    addr_mod: Optional[int] = None,
):
    """Array twin of :func:`iter_dma_bursts` (the numpy rung's generator).

    Yields :class:`~repro.traces.arrays.ArrayChunk` slabs of exactly
    ``chunk_size`` accesses (the last may be shorter) whose flattened
    content is access-for-access identical to ``iter_dma_bursts`` with
    the same arguments: the DRBG is consumed burst by burst in the same
    order (three draws per burst), only the per-access address walk is
    computed as one array expression instead of 10^8 ``Access``
    constructions.  ``addr_mod``, when given, folds every address by
    ``addr % addr_mod`` — the image wrap :func:`repro.api.run_stream`
    otherwise applies per access.

    Requires the numpy backend rung; callers gate on
    ``repro.backend.ACTIVE == "numpy"``.
    """
    from .. import backend as _backend
    from .arrays import KIND_CODES, ArrayChunk

    np = _backend.NUMPY
    if np is None:
        raise RuntimeError(
            "dma_burst_chunks needs the numpy backend rung; use "
            "iter_dma_bursts under the kernel/python rungs"
        )
    _check_count(n)
    if chunk_size <= 0:
        raise ValueError(f"chunk_size must be positive, got {chunk_size}")
    if burst <= 0:
        raise ValueError(f"burst must be positive, got {burst}")
    if size <= 0:
        raise ValueError(f"size must be positive, got {size}")
    if region < size:
        raise ValueError(
            f"region must be at least size ({size}), got {region}"
        )
    if not 0.0 <= read_fraction <= 1.0:
        raise ValueError(f"read_fraction must be in [0, 1], got {read_fraction}")
    span = region // size
    ramp = np.arange(burst, dtype=np.int64) * size
    load_code = KIND_CODES[AccessKind.LOAD]
    store_code = KIND_CODES[AccessKind.STORE]

    addr_parts = []
    kind_parts = []
    held = 0
    emitted = 0
    while emitted < n:
        # The same three draws, in the same order, as iter_dma_bursts.
        length = min(1 + rng.randbelow(burst), n - emitted)
        offset = rng.randbelow(span) * size
        code = load_code if rng.random() < read_fraction else store_code
        addrs = (offset + ramp[:length]) % region + base
        if addr_mod is not None:
            addrs = addrs % addr_mod
        addr_parts.append(addrs)
        kind_parts.append(np.full(length, code, dtype=np.uint8))
        held += length
        emitted += length
        if held >= chunk_size or emitted >= n:
            all_addrs = np.concatenate(addr_parts)
            all_kinds = np.concatenate(kind_parts)
            cut = 0
            while held - cut >= chunk_size or (emitted >= n and cut < held):
                take = min(chunk_size, held - cut)
                yield ArrayChunk(
                    all_kinds[cut: cut + take],
                    all_addrs[cut: cut + take],
                    np.full(take, size, dtype=np.int64),
                )
                cut += take
            addr_parts = [all_addrs[cut:]]
            kind_parts = [all_kinds[cut:]]
            held -= cut
