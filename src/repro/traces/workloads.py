"""The named workload suite used across experiments.

Five synthetic points spanning the axes the survey cares about, code
*images* whose statistics resemble embedded binaries (for the compression
and ECB experiments), and traces derived from *real* MCU kernel executions
(sort, memcpy, memset, search, checksum) — instruction and data streams of
actual programs rather than statistical mimics.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List

from ..crypto.drbg import DRBG
from . import generator
from .stream import DEFAULT_CHUNK_SIZE, TraceStream, chunked
from .trace import Access, AccessKind, Trace

__all__ = ["standard_suite", "make_workload", "iter_workload",
           "stream_workload", "array_stream_workload",
           "synthetic_code_image",
           "WORKLOAD_NAMES", "LONG_HORIZON_NAMES", "STREAM_WORKLOAD_NAMES",
           "ARRAY_STREAM_NAMES",
           "MCU_KERNELS", "events_to_trace", "trace_to_events",
           "mcu_workload"]

WORKLOAD_NAMES = (
    "sequential",
    "branchy",
    "data-local",
    "data-random",
    "write-heavy",
    "mixed",
)

#: Long-horizon workloads: their defining behaviour (phase changes, tenant
#: switches, burst trains) only shows at trace lengths that must stream.
LONG_HORIZON_NAMES = (
    "phased",
    "multi-tenant",
    "dma-burst",
)

#: Everything :func:`iter_workload`/:func:`stream_workload` accept.
STREAM_WORKLOAD_NAMES = WORKLOAD_NAMES + LONG_HORIZON_NAMES

#: Workloads with an array-chunk twin (:func:`array_stream_workload`):
#: generators cheap enough per DRBG draw that, at 10^8 accesses, the
#: per-access ``Access`` construction *is* the cost worth deleting.
ARRAY_STREAM_NAMES = ("dma-burst",)


def iter_workload(name: str, n: int = 20000, seed: int = 2005
                  ) -> Iterator[Access]:
    """Yield one named workload's accesses lazily and deterministically.

    ``make_workload(name, n, seed) == list(iter_workload(name, n, seed))``
    for every name in ``WORKLOAD_NAMES`` — both draw from the DRBG in the
    same order, so committed metrics do not move.  The long-horizon names
    (``LONG_HORIZON_NAMES``) are additionally available here.
    """
    rng = DRBG(seed).fork(name)
    if name == "sequential":
        return generator.iter_sequential_code(n, code_size=256 * 1024)
    if name == "branchy":
        return generator.iter_branchy_code(
            n, rng, p_taken=0.25, code_size=256 * 1024
        )
    if name == "data-local":
        return generator.iter_data_stream(
            n, rng, write_fraction=0.25, locality=0.9, working_set=128 * 1024
        )
    if name == "data-random":
        return generator.iter_random_data(
            n, rng, working_set=1 << 20, write_fraction=0.2
        )
    if name == "write-heavy":
        return generator.iter_data_stream(
            n, rng, write_fraction=0.6, locality=0.7, working_set=256 * 1024
        )
    if name == "mixed":
        return generator.iter_mixed_workload(n, rng)
    if name == "phased":
        return generator.iter_phased_program(n, rng)
    if name == "multi-tenant":
        return generator.iter_multi_tenant(n, rng)
    if name == "dma-burst":
        return generator.iter_dma_bursts(n, rng)
    raise KeyError(
        f"unknown workload {name!r}; choose from {STREAM_WORKLOAD_NAMES}"
    )


def make_workload(name: str, n: int = 20000, seed: int = 2005) -> Trace:
    """Build one named workload deterministically (materialized)."""
    return list(iter_workload(name, n=n, seed=seed))


def stream_workload(name: str, n: int = 20000, seed: int = 2005,
                    chunk_size: int = DEFAULT_CHUNK_SIZE) -> TraceStream:
    """A replayable chunk stream of one named workload.

    Each pass re-derives the DRBG from ``seed``, so the same stream can
    drive both legs of an overhead comparison; memory never holds more
    than ``chunk_size`` accesses.
    """
    if chunk_size <= 0:
        raise ValueError(f"chunk_size must be positive, got {chunk_size}")
    if name not in STREAM_WORKLOAD_NAMES:
        raise KeyError(
            f"unknown workload {name!r}; choose from {STREAM_WORKLOAD_NAMES}"
        )
    return TraceStream(
        lambda: chunked(iter_workload(name, n=n, seed=seed), chunk_size),
        length=n,
    )


def array_stream_workload(name: str, n: int = 20000, seed: int = 2005,
                          chunk_size: int = DEFAULT_CHUNK_SIZE,
                          addr_mod: int = None) -> TraceStream:
    """An array-chunk replayable stream of one named workload.

    Flattens to the exact access sequence of
    ``stream_workload(name, n, seed)`` — each pass re-derives the DRBG
    from ``seed`` and consumes it in the scalar generator's draw order —
    but delivers :class:`~repro.traces.arrays.ArrayChunk` slabs that the
    array executor reads without constructing ``Access`` records.
    ``addr_mod`` folds addresses by ``addr % addr_mod`` inside the
    arrays (the :func:`repro.api.run_stream` image wrap).

    Only :data:`ARRAY_STREAM_NAMES` have array twins, and the numpy
    backend rung must be active; callers gate on
    ``repro.backend.ACTIVE == "numpy"`` and fall back to
    :func:`stream_workload` otherwise.
    """
    if chunk_size <= 0:
        raise ValueError(f"chunk_size must be positive, got {chunk_size}")
    if name not in ARRAY_STREAM_NAMES:
        raise KeyError(
            f"workload {name!r} has no array twin; choose from "
            f"{ARRAY_STREAM_NAMES} (or use stream_workload)"
        )
    return TraceStream(
        lambda: generator.dma_burst_chunks(
            n, DRBG(seed).fork(name), chunk_size, addr_mod=addr_mod
        ),
        length=n,
    )


def standard_suite(n: int = 20000, seed: int = 2005) -> Dict[str, Trace]:
    """All named workloads."""
    return {name: make_workload(name, n=n, seed=seed) for name in WORKLOAD_NAMES}


#: Kernels available through :func:`mcu_workload`.
MCU_KERNELS = ("checksum", "fibonacci", "sort", "memset", "memcpy", "search")


#: obs "access" event detail -> simulator access kind.
_ACCESS_DETAILS = {
    "fetch": AccessKind.FETCH,
    "load": AccessKind.LOAD,
    "store": AccessKind.STORE,
}


def events_to_trace(events: Iterable) -> Trace:
    """Convert observed events into a simulator access trace.

    Two event shapes are accepted, and both keep access size and kind
    faithful:

    * MCU :class:`repro.isa.mcu.StepEvent` (has ``fetched``): the MCU's
      bus is 8 bits wide, so every fetch/load/store is one byte.
    * obs :class:`repro.obs.TraceEvent` (has ``kind``): ``"access"``
      events map ``detail`` (fetch/load/store) to the access kind and
      carry ``size`` through unchanged; other kinds from the closed
      taxonomy (hits, bus traffic, ...) describe consequences of
      accesses, not accesses, and are skipped.

    Anything else — an unknown event kind, an access with an unknown
    detail or a non-positive size, an object of neither shape — raises
    ``ValueError`` naming the offending event.
    """
    # Imported here to keep repro.traces importable without repro.obs.
    from ..obs.events import EVENT_KINDS

    trace: List[Access] = []
    for ev in events:
        if hasattr(ev, "fetched"):       # MCU StepEvent
            for addr in ev.fetched:
                trace.append(Access(AccessKind.FETCH, addr, 1))
            if ev.data_read is not None:
                trace.append(Access(AccessKind.LOAD, ev.data_read, 1))
            if ev.data_write is not None:
                trace.append(Access(AccessKind.STORE, ev.data_write, 1))
        elif hasattr(ev, "kind"):        # obs TraceEvent
            if ev.kind == "access":
                try:
                    kind = _ACCESS_DETAILS[ev.detail]
                except KeyError:
                    raise ValueError(
                        f"access event with unknown detail {ev.detail!r}; "
                        f"expected one of {sorted(_ACCESS_DETAILS)}"
                    ) from None
                if ev.size <= 0:
                    raise ValueError(
                        f"access event at addr {ev.addr:#x} has "
                        f"non-positive size {ev.size}"
                    )
                trace.append(Access(kind, ev.addr, ev.size))
            elif ev.kind not in EVENT_KINDS:
                raise ValueError(
                    f"unknown event kind {ev.kind!r}; expected one of the "
                    f"{len(EVENT_KINDS)} kinds in repro.obs.EVENT_KINDS"
                )
        else:
            raise ValueError(
                f"cannot convert event {ev!r}: neither an MCU StepEvent "
                "nor an obs TraceEvent"
            )
    return trace


def trace_to_events(trace: Iterable[Access]) -> List:
    """The inverse of :func:`events_to_trace` for obs events.

    Emits one ``"access"`` :class:`repro.obs.TraceEvent` per access,
    preserving kind (as ``detail``), address and size, so
    ``events_to_trace(trace_to_events(t)) == t`` for any trace.
    """
    from ..obs.events import TraceEvent

    return [
        TraceEvent(kind="access", addr=a.addr, size=a.size,
                   detail=a.kind.name.lower())
        for a in trace
    ]


def mcu_workload(kernel: str, repeat: int = 3, seed: int = 2005) -> Trace:
    """A trace from actually executing an MCU kernel, ``repeat`` times over.

    Unlike the synthetic generators, these carry the true fetch/load/store
    interleavings of running code — loops revisit their own instructions,
    data accesses cluster around real tables.
    """
    # Imported here: repro.isa imports repro.crypto, not repro.traces, so
    # the only cycle risk is at module import time.
    from ..isa.programs import (
        bubble_sort_program,
        checksum_program,
        fibonacci_program,
        mcu_trace,
        memcpy_program,
        memset_program,
        string_search_program,
    )

    sources = {
        "checksum": lambda: checksum_program(table_len=32),
        "fibonacci": lambda: fibonacci_program(count=40),
        "sort": lambda: bubble_sort_program(table_len=12, seed=seed),
        "memset": lambda: memset_program(length=48),
        "memcpy": lambda: memcpy_program(length=32, seed=seed),
        "search": lambda: string_search_program(table_len=48, seed=seed),
    }
    if kernel not in sources:
        raise KeyError(f"unknown kernel {kernel!r}; choose from {MCU_KERNELS}")
    events = mcu_trace(sources[kernel](), memory_size=2048, max_steps=50000)
    single = events_to_trace(events)
    return single * max(1, repeat)


def synthetic_code_image(
    size: int = 64 * 1024,
    seed: int = 2005,
    opcode_skew: float = 0.8,
    idiom_fraction: float = 0.3,
) -> bytes:
    """A code-like byte image with realistic redundancy.

    Real instruction streams have a heavily skewed opcode histogram and many
    repeated multi-word idioms (prologues, load-immediate pairs).  The image
    is built from a small pool of 4-byte "instructions" drawn with a skewed
    distribution, with whole idiom sequences (16 bytes) pasted in at
    ``idiom_fraction`` — enough structure for CodePack to reach its
    published compression range and for ECB to leak repeats.
    """
    if size % 4 != 0:
        raise ValueError(f"size must be a multiple of 4, got {size}")
    rng = DRBG(seed).fork("code-image")
    # Instruction pool: a few very common words, a tail of rarer ones.
    common = [bytes([rng.randbits(8) for _ in range(4)]) for _ in range(16)]
    rare = [bytes([rng.randbits(8) for _ in range(4)]) for _ in range(240)]
    idioms = [
        b"".join(rng.choice(common) for _ in range(4)) for _ in range(8)
    ]
    out = bytearray()
    while len(out) < size:
        roll = rng.random()
        if roll < idiom_fraction:
            out += rng.choice(idioms)
        elif roll < idiom_fraction + (1 - idiom_fraction) * opcode_skew:
            out += rng.choice(common)
        else:
            out += rng.choice(rare)
    return bytes(out[:size])
