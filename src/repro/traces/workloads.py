"""The named workload suite used across experiments.

Five synthetic points spanning the axes the survey cares about, code
*images* whose statistics resemble embedded binaries (for the compression
and ECB experiments), and traces derived from *real* MCU kernel executions
(sort, memcpy, memset, search, checksum) — instruction and data streams of
actual programs rather than statistical mimics.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from ..crypto.drbg import DRBG
from . import generator
from .trace import Access, AccessKind, Trace

__all__ = ["standard_suite", "make_workload", "synthetic_code_image",
           "WORKLOAD_NAMES", "MCU_KERNELS", "events_to_trace",
           "mcu_workload"]

WORKLOAD_NAMES = (
    "sequential",
    "branchy",
    "data-local",
    "data-random",
    "write-heavy",
    "mixed",
)


def make_workload(name: str, n: int = 20000, seed: int = 2005) -> Trace:
    """Build one named workload deterministically."""
    rng = DRBG(seed).fork(name)
    if name == "sequential":
        return generator.sequential_code(n, code_size=256 * 1024)
    if name == "branchy":
        return generator.branchy_code(n, rng, p_taken=0.25, code_size=256 * 1024)
    if name == "data-local":
        return generator.data_stream(
            n, rng, write_fraction=0.25, locality=0.9, working_set=128 * 1024
        )
    if name == "data-random":
        return generator.random_data(
            n, rng, working_set=1 << 20, write_fraction=0.2
        )
    if name == "write-heavy":
        return generator.data_stream(
            n, rng, write_fraction=0.6, locality=0.7, working_set=256 * 1024
        )
    if name == "mixed":
        return generator.mixed_workload(n, rng)
    raise KeyError(f"unknown workload {name!r}; choose from {WORKLOAD_NAMES}")


def standard_suite(n: int = 20000, seed: int = 2005) -> Dict[str, Trace]:
    """All named workloads."""
    return {name: make_workload(name, n=n, seed=seed) for name in WORKLOAD_NAMES}


#: Kernels available through :func:`mcu_workload`.
MCU_KERNELS = ("checksum", "fibonacci", "sort", "memset", "memcpy", "search")


def events_to_trace(events: Iterable) -> Trace:
    """Convert MCU step events into a simulator access trace."""
    trace: List[Access] = []
    for ev in events:
        for addr in ev.fetched:
            trace.append(Access(AccessKind.FETCH, addr, 1))
        if ev.data_read is not None:
            trace.append(Access(AccessKind.LOAD, ev.data_read, 1))
        if ev.data_write is not None:
            trace.append(Access(AccessKind.STORE, ev.data_write, 1))
    return trace


def mcu_workload(kernel: str, repeat: int = 3, seed: int = 2005) -> Trace:
    """A trace from actually executing an MCU kernel, ``repeat`` times over.

    Unlike the synthetic generators, these carry the true fetch/load/store
    interleavings of running code — loops revisit their own instructions,
    data accesses cluster around real tables.
    """
    # Imported here: repro.isa imports repro.crypto, not repro.traces, so
    # the only cycle risk is at module import time.
    from ..isa.programs import (
        bubble_sort_program,
        checksum_program,
        fibonacci_program,
        mcu_trace,
        memcpy_program,
        memset_program,
        string_search_program,
    )

    sources = {
        "checksum": lambda: checksum_program(table_len=32),
        "fibonacci": lambda: fibonacci_program(count=40),
        "sort": lambda: bubble_sort_program(table_len=12, seed=seed),
        "memset": lambda: memset_program(length=48),
        "memcpy": lambda: memcpy_program(length=32, seed=seed),
        "search": lambda: string_search_program(table_len=48, seed=seed),
    }
    if kernel not in sources:
        raise KeyError(f"unknown kernel {kernel!r}; choose from {MCU_KERNELS}")
    events = mcu_trace(sources[kernel](), memory_size=2048, max_steps=50000)
    single = events_to_trace(events)
    return single * max(1, repeat)


def synthetic_code_image(
    size: int = 64 * 1024,
    seed: int = 2005,
    opcode_skew: float = 0.8,
    idiom_fraction: float = 0.3,
) -> bytes:
    """A code-like byte image with realistic redundancy.

    Real instruction streams have a heavily skewed opcode histogram and many
    repeated multi-word idioms (prologues, load-immediate pairs).  The image
    is built from a small pool of 4-byte "instructions" drawn with a skewed
    distribution, with whole idiom sequences (16 bytes) pasted in at
    ``idiom_fraction`` — enough structure for CodePack to reach its
    published compression range and for ECB to leak repeats.
    """
    if size % 4 != 0:
        raise ValueError(f"size must be a multiple of 4, got {size}")
    rng = DRBG(seed).fork("code-image")
    # Instruction pool: a few very common words, a tail of rarer ones.
    common = [bytes([rng.randbits(8) for _ in range(4)]) for _ in range(16)]
    rare = [bytes([rng.randbits(8) for _ in range(4)]) for _ in range(240)]
    idioms = [
        b"".join(rng.choice(common) for _ in range(4)) for _ in range(8)
    ]
    out = bytearray()
    while len(out) < size:
        roll = rng.random()
        if roll < idiom_fraction:
            out += rng.choice(idioms)
        elif roll < idiom_fraction + (1 - idiom_fraction) * opcode_skew:
            out += rng.choice(common)
        else:
            out += rng.choice(rare)
    return bytes(out[:size])
