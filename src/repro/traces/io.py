"""Trace file I/O in the classic Dinero ``din`` format.

Interop with the trace-driven-simulation ecosystem the survey's era used:
one access per line, ``<label> <hex address> [size]``, where the label is
0 = data read, 1 = data write, 2 = instruction fetch.  Lines starting with
``#`` (and blank lines) are comments.

>>> from io import StringIO
>>> buf = StringIO()
>>> save_trace([Access(AccessKind.FETCH, 0x400, 4)], buf)
1
>>> buf.getvalue()
'2 400 4\\n'
"""

from __future__ import annotations

from typing import IO, Iterable, List, Union

from .trace import Access, AccessKind, Trace

__all__ = ["save_trace", "load_trace", "TraceFormatError"]

_KIND_TO_LABEL = {
    AccessKind.LOAD: 0,
    AccessKind.STORE: 1,
    AccessKind.FETCH: 2,
}
_LABEL_TO_KIND = {v: k for k, v in _KIND_TO_LABEL.items()}


class TraceFormatError(ValueError):
    """Malformed din trace input."""


def save_trace(trace: Iterable[Access], destination: Union[str, IO]) -> int:
    """Write a trace in din format; returns the number of records."""
    own = isinstance(destination, str)
    stream = open(destination, "w") if own else destination
    count = 0
    try:
        for access in trace:
            label = _KIND_TO_LABEL[access.kind]
            stream.write(f"{label} {access.addr:x} {access.size}\n")
            count += 1
    finally:
        if own:
            stream.close()
    return count


def load_trace(source: Union[str, IO]) -> Trace:
    """Read a din-format trace (tolerates the classic 2-column variant)."""
    own = isinstance(source, str)
    stream = open(source) if own else source
    trace: List[Access] = []
    try:
        for lineno, raw in enumerate(stream, start=1):
            line = raw.split("#", 1)[0].strip()
            if not line:
                continue
            parts = line.split()
            if len(parts) not in (2, 3):
                raise TraceFormatError(
                    f"line {lineno}: expected 2 or 3 fields, got {len(parts)}"
                )
            try:
                label = int(parts[0])
                addr = int(parts[1], 16)
                size = int(parts[2]) if len(parts) == 3 else 4
            except ValueError as exc:
                raise TraceFormatError(f"line {lineno}: {exc}") from exc
            if label not in _LABEL_TO_KIND:
                raise TraceFormatError(
                    f"line {lineno}: unknown access label {label}"
                )
            trace.append(Access(_LABEL_TO_KIND[label], addr, size))
    finally:
        if own:
            stream.close()
    return trace
