"""Trace file I/O: the classic Dinero ``din`` text format and a compact
binary record format.

The din format is interop with the trace-driven-simulation ecosystem the
survey's era used: one access per line, ``<label> <hex address> [size]``,
where the label is 0 = data read, 1 = data write, 2 = instruction fetch.
Lines starting with ``#`` (and blank lines) are comments.

The binary format (:func:`save_trace_bin` / :func:`iter_trace_bin`) is
for long-horizon traces: a 6-byte magic followed by fixed 13-byte records
``>BQI`` (label, address, size).  Both formats read and write as bounded-
memory record streams — no whole-file ``read()`` anywhere — and any
truncated or corrupt trailing record raises :class:`TraceFormatError`
(one line, naming the record) rather than an opaque struct traceback.

>>> from io import StringIO
>>> buf = StringIO()
>>> save_trace([Access(AccessKind.FETCH, 0x400, 4)], buf)
1
>>> buf.getvalue()
'2 400 4\\n'
"""

from __future__ import annotations

import struct
from typing import IO, Iterable, Iterator, List, Union

from .trace import Access, AccessKind, Trace

__all__ = ["save_trace", "load_trace", "iter_trace", "TraceFormatError",
           "save_trace_bin", "load_trace_bin", "iter_trace_bin",
           "BTRC_MAGIC"]

_KIND_TO_LABEL = {
    AccessKind.LOAD: 0,
    AccessKind.STORE: 1,
    AccessKind.FETCH: 2,
}
_LABEL_TO_KIND = {v: k for k, v in _KIND_TO_LABEL.items()}


class TraceFormatError(ValueError):
    """Malformed din trace input."""


def save_trace(trace: Iterable[Access], destination: Union[str, IO]) -> int:
    """Write a trace in din format; returns the number of records."""
    own = isinstance(destination, str)
    stream = open(destination, "w") if own else destination
    count = 0
    try:
        for access in trace:
            label = _KIND_TO_LABEL[access.kind]
            stream.write(f"{label} {access.addr:x} {access.size}\n")
            count += 1
    finally:
        if own:
            stream.close()
    return count


def iter_trace(source: Union[str, IO]) -> Iterator[Access]:
    """Stream a din-format trace record by record (bounded memory).

    Tolerates the classic 2-column variant (size defaults to 4).  A
    malformed line raises :class:`TraceFormatError` naming the line.
    """
    own = isinstance(source, str)
    stream = open(source) if own else source
    try:
        for lineno, raw in enumerate(stream, start=1):
            line = raw.split("#", 1)[0].strip()
            if not line:
                continue
            parts = line.split()
            if len(parts) not in (2, 3):
                raise TraceFormatError(
                    f"line {lineno}: expected 2 or 3 fields, got {len(parts)}"
                )
            try:
                label = int(parts[0])
                addr = int(parts[1], 16)
                size = int(parts[2]) if len(parts) == 3 else 4
            except ValueError as exc:
                raise TraceFormatError(f"line {lineno}: {exc}") from exc
            if label not in _LABEL_TO_KIND:
                raise TraceFormatError(
                    f"line {lineno}: unknown access label {label}"
                )
            if addr < 0 or size <= 0:
                raise TraceFormatError(
                    f"line {lineno}: invalid record "
                    f"(addr {addr:#x}, size {size})"
                )
            yield Access(_LABEL_TO_KIND[label], addr, size)
    finally:
        if own:
            stream.close()


def load_trace(source: Union[str, IO]) -> Trace:
    """Read a whole din-format trace into memory."""
    return list(iter_trace(source))


# --------------------------------------------------------------------------
# Binary record format ("BTRC1"): fixed-width records for 10^8+ traces.
# --------------------------------------------------------------------------

#: File magic for the binary trace format.
BTRC_MAGIC = b"BTRC1\n"

#: One record: label byte, 64-bit address, 32-bit size (big-endian).
_RECORD = struct.Struct(">BQI")

#: Records read/written per block (bounds memory at ~832 KiB per block).
_BLOCK_RECORDS = 65536


def save_trace_bin(trace: Iterable[Access],
                   destination: Union[str, IO]) -> int:
    """Write a trace in the binary format; returns the record count.

    Accepts any access iterable (including a live generator) and writes
    in fixed-size blocks, so an unbounded trace streams straight to disk.
    """
    own = isinstance(destination, str)
    stream = open(destination, "wb") if own else destination
    count = 0
    pack = _RECORD.pack
    try:
        stream.write(BTRC_MAGIC)
        block = bytearray()
        for access in trace:
            block += pack(_KIND_TO_LABEL[access.kind], access.addr, access.size)
            count += 1
            if count % _BLOCK_RECORDS == 0:
                stream.write(block)
                block.clear()
        if block:
            stream.write(block)
    finally:
        if own:
            stream.close()
    return count


def iter_trace_bin(source: Union[str, IO]) -> Iterator[Access]:
    """Stream a binary-format trace record by record (bounded memory).

    A missing/garbled magic, an unknown label, or a truncated trailing
    record raises :class:`TraceFormatError` with a one-line message
    naming the offending record.
    """
    own = isinstance(source, str)
    stream = open(source, "rb") if own else source
    record_size = _RECORD.size
    try:
        magic = stream.read(len(BTRC_MAGIC))
        if magic != BTRC_MAGIC:
            raise TraceFormatError(
                f"not a binary trace: expected magic {BTRC_MAGIC!r}, "
                f"got {magic!r}"
            )
        record = 0
        pending = b""
        while True:
            block = stream.read(record_size * _BLOCK_RECORDS)
            if not block:
                break
            if pending:
                block = pending + block
                pending = b""
            whole = len(block) - len(block) % record_size
            for offset in range(0, whole, record_size):
                label, addr, size = _RECORD.unpack_from(block, offset)
                record += 1
                if label not in _LABEL_TO_KIND:
                    raise TraceFormatError(
                        f"record {record}: unknown access label {label}"
                    )
                if size <= 0:
                    raise TraceFormatError(
                        f"record {record}: invalid size {size}"
                    )
                yield Access(_LABEL_TO_KIND[label], addr, size)
            pending = block[whole:]
        if pending:
            raise TraceFormatError(
                f"record {record + 1}: truncated record "
                f"({len(pending)} of {record_size} bytes)"
            )
    finally:
        if own:
            stream.close()


def load_trace_bin(source: Union[str, IO]) -> Trace:
    """Read a whole binary-format trace into memory."""
    return list(iter_trace_bin(source))
