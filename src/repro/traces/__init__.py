"""Workload substrate: access-trace records, synthetic generators and the
named workload suite the experiments share."""

from .generator import (
    branchy_code,
    data_stream,
    mixed_workload,
    pointer_chase,
    random_data,
    sequential_code,
    write_burst,
)
from .io import TraceFormatError, load_trace, save_trace
from .trace import Access, AccessKind, Trace, trace_stats
from .workloads import (
    MCU_KERNELS,
    WORKLOAD_NAMES,
    events_to_trace,
    make_workload,
    mcu_workload,
    standard_suite,
    synthetic_code_image,
)

__all__ = [
    "branchy_code", "data_stream", "mixed_workload", "pointer_chase",
    "random_data", "sequential_code", "write_burst",
    "Access", "AccessKind", "Trace", "trace_stats",
    "TraceFormatError", "load_trace", "save_trace",
    "MCU_KERNELS", "WORKLOAD_NAMES", "events_to_trace", "make_workload",
    "mcu_workload", "standard_suite", "synthetic_code_image",
]
