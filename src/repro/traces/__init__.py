"""Workload substrate: access-trace records, synthetic generators (list
and streaming forms) and the named workload suite the experiments share."""

from .generator import (
    branchy_code,
    data_stream,
    iter_branchy_code,
    iter_data_stream,
    iter_dma_bursts,
    iter_mixed_workload,
    iter_multi_tenant,
    iter_phased_program,
    iter_pointer_chase,
    iter_random_data,
    iter_sequential_code,
    iter_write_burst,
    mixed_workload,
    pointer_chase,
    random_data,
    sequential_code,
    write_burst,
)
from .io import (
    BTRC_MAGIC,
    TraceFormatError,
    iter_trace,
    iter_trace_bin,
    load_trace,
    load_trace_bin,
    save_trace,
    save_trace_bin,
)
from .stream import DEFAULT_CHUNK_SIZE, TraceStream, chunked
from .trace import Access, AccessKind, Trace, trace_stats
from .workloads import (
    LONG_HORIZON_NAMES,
    MCU_KERNELS,
    STREAM_WORKLOAD_NAMES,
    WORKLOAD_NAMES,
    events_to_trace,
    iter_workload,
    make_workload,
    mcu_workload,
    standard_suite,
    stream_workload,
    synthetic_code_image,
    trace_to_events,
)

__all__ = [
    "branchy_code", "data_stream", "mixed_workload", "pointer_chase",
    "random_data", "sequential_code", "write_burst",
    "iter_branchy_code", "iter_data_stream", "iter_mixed_workload",
    "iter_pointer_chase", "iter_random_data", "iter_sequential_code",
    "iter_write_burst", "iter_phased_program", "iter_multi_tenant",
    "iter_dma_bursts",
    "Access", "AccessKind", "Trace", "trace_stats",
    "TraceStream", "chunked", "DEFAULT_CHUNK_SIZE",
    "TraceFormatError", "load_trace", "save_trace", "iter_trace",
    "load_trace_bin", "save_trace_bin", "iter_trace_bin", "BTRC_MAGIC",
    "MCU_KERNELS", "WORKLOAD_NAMES", "LONG_HORIZON_NAMES",
    "STREAM_WORKLOAD_NAMES", "events_to_trace", "trace_to_events",
    "make_workload", "iter_workload", "stream_workload", "mcu_workload",
    "standard_suite", "synthetic_code_image",
]
