"""Array-backed access chunks for the numpy execution rung.

A memory-access chunk does not need 65536 ``Access`` dataclass records
to describe 65536 accesses: three parallel arrays (kind codes, byte
addresses, sizes) carry the same information at a fraction of the
construction cost.  :class:`ArrayChunk` holds that representation and
*quacks like* a ``Sequence[Access]`` — ``len``, iteration and indexing
materialize the dataclass records lazily — so every scalar consumer
(``TraceStream`` flattening, ``list(chunk)``, the reference step loop)
sees ordinary accesses, while the array executor in
:mod:`repro.sim.fastpath` reads the arrays directly and never builds a
record at all.

Array chunks are only ever produced while the backend ladder's numpy
rung is active (:data:`repro.backend.ACTIVE` == ``"numpy"``); under the
kernel or python rungs the scalar generators run instead, so no numpy
objects exist to leak into a numpy-less process.
"""

from __future__ import annotations

from typing import Iterator

from .trace import Access, AccessKind

__all__ = ["ArrayChunk", "KIND_CODES", "KIND_BY_CODE"]

#: ``AccessKind`` -> the small integer stored in a chunk's kind array.
KIND_CODES = {kind: code for code, kind in enumerate(AccessKind)}

#: Inverse of :data:`KIND_CODES`, indexable by the array payload.
KIND_BY_CODE = tuple(AccessKind)


class ArrayChunk:
    """One chunk of accesses as parallel arrays (see module docstring).

    ``kinds`` holds :data:`KIND_CODES` values (uint8), ``addrs`` byte
    addresses (int64) and ``sizes`` access sizes (int64); all three are
    the same length.  The class itself has no numpy dependency — it
    stores whatever array objects the caller built.
    """

    __slots__ = ("kinds", "addrs", "sizes")

    def __init__(self, kinds, addrs, sizes):
        if not (len(kinds) == len(addrs) == len(sizes)):
            raise ValueError(
                f"parallel arrays disagree on length: "
                f"{len(kinds)}/{len(addrs)}/{len(sizes)}"
            )
        self.kinds = kinds
        self.addrs = addrs
        self.sizes = sizes

    def __len__(self) -> int:
        return len(self.addrs)

    def __getitem__(self, index: int) -> Access:
        return Access(
            KIND_BY_CODE[int(self.kinds[index])],
            int(self.addrs[index]),
            int(self.sizes[index]),
        )

    def __iter__(self) -> Iterator[Access]:
        # tolist() converts to plain ints in one C pass; the per-access
        # cost is then just the dataclass construction the scalar
        # consumer was going to pay anyway.
        by_code = KIND_BY_CODE
        for code, addr, size in zip(self.kinds.tolist(),
                                    self.addrs.tolist(),
                                    self.sizes.tolist()):
            yield Access(by_code[code], addr, size)
