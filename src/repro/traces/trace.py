"""Memory-access trace record types.

The CPU model is trace driven: a workload is a sequence of
:class:`Access` records (instruction fetches, data loads, data stores) that
the :class:`repro.sim.system.SecureSystem` replays against the cache
hierarchy and the encryption engine under test.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Iterable, List

__all__ = ["AccessKind", "Access", "Trace", "trace_stats"]


class AccessKind(Enum):
    """What the CPU is doing on the bus."""

    FETCH = "fetch"   # instruction fetch
    LOAD = "load"     # data read
    STORE = "store"   # data write


@dataclass(frozen=True)
class Access:
    """One CPU memory reference.

    ``addr`` is a byte address; ``size`` the number of bytes referenced.
    """

    kind: AccessKind
    addr: int
    size: int = 4

    def __post_init__(self) -> None:
        if self.addr < 0:
            raise ValueError(f"negative address {self.addr}")
        if self.size <= 0:
            raise ValueError(f"non-positive size {self.size}")

    @property
    def is_write(self) -> bool:
        return self.kind is AccessKind.STORE


Trace = List[Access]


def trace_stats(trace: Iterable[Access]) -> dict:
    """Summary counts used by workload sanity tests and reports."""
    counts = {kind: 0 for kind in AccessKind}
    total_bytes = 0
    n = 0
    for access in trace:
        counts[access.kind] += 1
        total_bytes += access.size
        n += 1
    return {
        "accesses": n,
        "fetches": counts[AccessKind.FETCH],
        "loads": counts[AccessKind.LOAD],
        "stores": counts[AccessKind.STORE],
        "bytes": total_bytes,
        "write_fraction": counts[AccessKind.STORE] / n if n else 0.0,
    }
