"""Chunk streams: unbounded traces in bounded memory.

A :class:`TraceStream` is the streaming counterpart of a materialized
``Trace``: an ordered sequence of :class:`~repro.traces.trace.Access`
records delivered as *chunks* (lists) so that a 10^8–10^9-access
workload never exists in memory at once.  ``compile_trace``,
:func:`repro.sim.fastpath.execute` and :meth:`repro.sim.system.
SecureSystem.run` all accept one anywhere a plain trace is accepted,
with metrics byte-identical to the materialized path at any chunk size
(the carried-state invariants live in :mod:`repro.sim.fastpath`).

Chunk sources come in two flavours:

* **replayable** — built from a zero-argument factory (or a concrete
  sequence of chunks): every call to :meth:`TraceStream.chunks` starts a
  fresh pass, so the same stream can drive a secured run and its
  plaintext baseline.  :func:`repro.traces.workloads.stream_workload`
  builds these.
* **one-shot** — built from a live iterator (a socket, a pipe, a
  generator already running).  A second pass raises a one-line
  ``RuntimeError`` instead of silently replaying nothing.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, List, Optional, Sequence, Union

from .trace import Access

__all__ = ["TraceStream", "chunked", "DEFAULT_CHUNK_SIZE"]

#: Default accesses per chunk: large enough to amortize per-chunk
#: compile/dispatch cost, small enough that one chunk is a few MB.
DEFAULT_CHUNK_SIZE = 65536

#: Anything that can source chunks: a factory, a sequence of chunks, or
#: a live iterator of chunks.
ChunkSource = Union[
    Callable[[], Iterable[Sequence[Access]]],
    Sequence[Sequence[Access]],
    Iterator[Sequence[Access]],
]


def chunked(accesses: Iterable[Access],
            chunk_size: int = DEFAULT_CHUNK_SIZE
            ) -> Iterator[List[Access]]:
    """Group an access iterable into lists of ``chunk_size`` accesses."""
    if chunk_size <= 0:
        raise ValueError(f"chunk_size must be positive, got {chunk_size}")
    chunk: List[Access] = []
    append = chunk.append
    for access in accesses:
        append(access)
        if len(chunk) >= chunk_size:
            yield chunk
            chunk = []
            append = chunk.append
    if chunk:
        yield chunk


class TraceStream:
    """An ordered stream of ``Access`` chunks (see the module docstring).

    ``source`` may be a zero-argument factory returning a chunk
    iterable (replayable), a list/tuple of chunks (replayable), or a
    live chunk iterator (one-shot).  ``length``, when known, is the
    total access count — purely informational (progress displays);
    execution never relies on it.
    """

    __slots__ = ("_factory", "_iterator", "_consumed", "length")

    def __init__(self, source: ChunkSource,
                 length: Optional[int] = None):
        self._factory: Optional[Callable[[], Iterable[Sequence[Access]]]]
        self._iterator: Optional[Iterator[Sequence[Access]]]
        if callable(source):
            self._factory, self._iterator = source, None
        elif isinstance(source, (list, tuple)):
            self._factory, self._iterator = (lambda: source), None
        else:
            self._factory, self._iterator = None, iter(source)
        self._consumed = False
        self.length = length

    @classmethod
    def from_accesses(cls, accesses: Iterable[Access],
                      chunk_size: int = DEFAULT_CHUNK_SIZE,
                      length: Optional[int] = None) -> "TraceStream":
        """Chunk an access iterable into a stream.

        A concrete sequence (a materialized trace) yields a replayable
        stream; a live iterator yields a one-shot stream.
        """
        if chunk_size <= 0:
            raise ValueError(
                f"chunk_size must be positive, got {chunk_size}")
        if isinstance(accesses, (list, tuple)):
            if length is None:
                length = len(accesses)
            return cls(lambda: chunked(accesses, chunk_size), length=length)
        return cls(chunked(accesses, chunk_size), length=length)

    @property
    def replayable(self) -> bool:
        """Whether :meth:`chunks` can be called more than once."""
        return self._factory is not None

    def chunks(self) -> Iterator[Sequence[Access]]:
        """Start a pass over the chunks."""
        if self._factory is not None:
            return iter(self._factory())
        if self._consumed:
            raise RuntimeError(
                "this trace stream was already consumed; build it from a "
                "factory (or a list of chunks) to replay it"
            )
        self._consumed = True
        assert self._iterator is not None
        return self._iterator

    def __iter__(self) -> Iterator[Access]:
        """Iterate individual accesses (flattens the chunks)."""
        for chunk in self.chunks():
            yield from chunk
