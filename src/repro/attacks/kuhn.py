"""Kuhn's Cipher Instruction Search attack on the DS5002FP ([6], §2.3).

"The security principle of this microcontroller is based on a ciphering by
block of 8-bit instructions.  The hacker circumvents the cryptographic
problem by finding a hole in the architecture processing and by applying
exhaustive attack (8-bit instruction <=> 256 possibilities).  After having
identified the MOV instruction, he dumped the external memory content in
clear form through the parallel-port."

Attacker model (a board-level class-II adversary, per the survey's IBM
taxonomy): raw read/write access to external memory (ciphertext bytes),
control of reset, single stepping, observation of the bus (fetch and data
addresses) and of the parallel port, and knowledge of the instruction set —
the part is a standard 8051 flavour; only the key is secret.

The attack never touches the key.  It exploits the 8-bit block: at any
address there are only 256 possible ciphertext bytes, so the per-address
decryption function can be tabulated *by experiment*:

1. **Classify address 0.**  Inject each of the 256 candidate bytes at
   address 0 and observe one instruction execute.  Behaviour (instruction
   length read off the fetch addresses, port strobes, data-bus activity)
   identifies the candidate decoding to the 3-byte ``MOV A, addr16`` —
   uniquely, because it is the only length-3 instruction that issues a data
   read.  The signatures of all 256 candidates are kept (they also decode
   the factory byte at cell 0 later).
2. **Tabulate D_1 and D_2 from the bus.**  With ``MOV A, addr16`` planted
   at 0, the *decoded* operands appear on the bus as the data address:
   sweeping the ciphertext byte at address 1 reads off the full D_1 table
   (low address byte), sweeping address 2 reads off D_2.  These tables are
   the decryption of those cells — and their inverses let the attacker
   *forge* arbitrary bytes there, including opcodes.
3. **Find E_3(OUT).**  Point the read gadget somewhere harmless and sweep
   address 3 until a port strobe appears.
4. **Dump.**  For every target t outside the gadget,
   ``[E_0(MOV A,addr16), E_1(lo t), E_2(hi t), E_3(OUT)]`` prints the
   plaintext byte on the port.
5. **The gadget's own cells.**  Cells 1 and 2 are table lookups
   (plaintext = D[factory byte]).  Cell 3's table D_3 is built by forging a
   second read instruction *at address 1* (possible since D_1/D_2 are
   known) whose operand cell is 3.  Cell 0 cannot appear as an operand of
   any reachable instruction (execution always begins there), so it is
   decoded from its recorded phase-1 behaviour signature; a handful of
   opcode pairs are behaviourally identical from reset (e.g. ``MOV A,#x``
   vs ``XRL A,#x`` with A=0) and are reported as an explicit ambiguity set
   — the same residual uncertainty the physical attack has.

Cost: ~5 x 256 probe runs plus one run per dumped byte — exactly the
"exhaustive attack, 256 possibilities" scale the survey describes.

Against the DS5240's 64-bit blocks the same experiment collapses:
:func:`brute_force_tries` counts the 2^64 per-address search space, and
:func:`block_diffusion_probe` shows single-byte probes garbling whole
blocks, denying the search its foothold.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..crypto.feistel import SmallBlockCipher, TweakableFeistel
from ..isa.mcu import INSTRUCTION_LENGTHS, MCU, Op, StepEvent
from ..obs import EventSink, TraceEvent, current_sink

__all__ = ["DallasBoard", "KuhnAttack", "AttackFailure", "AttackReport",
           "brute_force_tries", "block_diffusion_probe"]


class AttackFailure(Exception):
    """The search did not find the gadget it needed."""


class DallasBoard:
    """The victim: encrypted firmware + MCU, exposed at board level.

    The attacker talks only to this class's public API; the cipher instance
    is sealed inside the closures handed to the MCU — the key never leaves
    the "chip".
    """

    def __init__(self, cipher: SmallBlockCipher, firmware: bytes,
                 memory_size: int = 4096,
                 sink: Optional[EventSink] = None):
        if len(firmware) > memory_size:
            raise ValueError("firmware larger than external memory")
        self.sink = sink if sink is not None else current_sink()
        self.memory_size = memory_size
        self.memory = bytearray(
            cipher.encrypt(0, bytes(firmware).ljust(memory_size, b"\x00"))
        )
        self._mcu = MCU(
            self.memory,
            decrypt=cipher.decrypt_byte,
            encrypt=cipher.encrypt_byte,
        )
        self.runs = 0
        self.steps_executed = 0

    # -- attacker API ------------------------------------------------------

    def read_raw(self, addr: int, nbytes: int = 1) -> bytes:
        """Board-level memory read (ciphertext)."""
        return bytes(self.memory[addr: addr + nbytes])

    def write_raw(self, addr: int, data: bytes) -> None:
        """Board-level memory write (inject ciphertext)."""
        self.memory[addr: addr + len(data)] = data

    def reset_and_step(self, steps: int) -> List[StepEvent]:
        """Pulse reset, then single-step ``steps`` instructions."""
        self._mcu.reset()
        self._mcu.port_log.clear()
        self.runs += 1
        if self.sink is not None:
            self.sink.emit(TraceEvent(kind="probe-run", size=steps))
        events = []
        pc = 0
        # The sink test is hoisted out of the loop: the attack single-steps
        # millions of instructions, and the disabled path must stay free.
        sink = self.sink
        for _ in range(steps):
            event = self._mcu.step()
            events.append(event)
            self.steps_executed += 1
            if sink is not None:
                sink.emit(TraceEvent(
                    kind="mcu-step", addr=pc,
                    detail="halted" if event.halted else "",
                ))
            pc = event.next_pc
            if event.halted:
                break
        return events


# Behaviour signature: (shape, port?, data_read?, data_write?, halted?)
# where shape is the instruction length 1-4 or "jump".
_Signature = Tuple[object, bool, bool, bool, bool]


def _signature_of(event: StepEvent, pc: int) -> _Signature:
    if event.halted:
        shape: object = 1
    else:
        delta = event.next_pc - pc
        shape = delta if delta in (1, 2, 3, 4) else "jump"
    return (
        shape,
        event.port_write is not None,
        event.data_read is not None,
        event.data_write is not None,
        event.halted,
    )


def _invert(table: List[int]) -> List[int]:
    inverse = [0] * 256
    for c, p in enumerate(table):
        inverse[p] = c
    return inverse


@dataclass
class AttackReport:
    """Everything the attack recovered, plus its cost."""

    plaintext: bytes
    ambiguous_cells: Dict[int, Set[int]]
    probe_runs: int
    steps_executed: int
    d_tables: Dict[int, List[int]] = field(default_factory=dict)

    @property
    def fully_determined(self) -> bool:
        return not self.ambiguous_cells


class KuhnAttack:
    """End-to-end Cipher Instruction Search against a :class:`DallasBoard`."""

    #: Safe data address the probe gadgets read when the target is irrelevant.
    SAFE_ADDR = 0x0010

    def __init__(self, board: DallasBoard, verbose: bool = False):
        self.board = board
        self.verbose = verbose
        #: Factory ciphertext bytes, saved before the first injection.
        self._factory: Dict[int, int] = {}
        #: Phase-1 behaviour signatures of every candidate at address 0.
        self._signatures0: Dict[int, _Signature] = {}
        self.d1: List[int] = []
        self.d2: List[int] = []
        self.d3: List[int] = []
        self.mov0 = -1   # E_0(MOV A, addr16)
        self.out3 = -1   # E_3(OUT)
        self.ambiguous_cells: Dict[int, Set[int]] = {}

    # -- probing ------------------------------------------------------------

    def _inject(self, setup: Dict[int, int]) -> None:
        for addr, value in setup.items():
            if addr not in self._factory:
                self._factory[addr] = self.board.memory[addr]
            self.board.write_raw(addr, bytes([value]))

    def _probe(self, setup: Dict[int, int], steps: int) -> List[StepEvent]:
        self._inject(setup)
        return self.board.reset_and_step(steps)

    def _restore_all(self) -> None:
        for addr, value in self._factory.items():
            self.board.write_raw(addr, bytes([value]))

    def _log(self, message: str) -> None:
        if self.verbose:
            print(f"[kuhn] {message}")

    def _phase(self, name: str) -> None:
        if self.board.sink is not None:
            self.board.sink.emit(TraceEvent(kind="attack-phase", detail=name))

    # -- phase 1: classify address 0 -----------------------------------------

    def _classify_address0(self) -> None:
        self._log("phase 1: classifying 256 candidates at address 0")
        matches = []
        for candidate in range(256):
            events = self._probe({0: candidate, 1: 0, 2: 0, 3: 0}, 1)
            sig = _signature_of(events[0], 0)
            self._signatures0[candidate] = sig
            shape, port, data_read, data_write, halted = sig
            if shape == 3 and data_read and not data_write and not port:
                matches.append(candidate)
        if len(matches) != 1:
            raise AttackFailure(
                f"MOV A,addr16 search at 0: {len(matches)} candidates"
            )
        self.mov0 = matches[0]

    # -- phase 2: operand tables off the bus ----------------------------------

    def _tabulate(self, sweep_cell: int, fixed: Dict[int, int],
                  extract_high: bool, step_index: int) -> List[int]:
        table = [0] * 256
        seen = set()
        for candidate in range(256):
            setup = dict(fixed)
            setup[sweep_cell] = candidate
            events = self._probe(setup, step_index + 1)
            if len(events) <= step_index or events[step_index].data_read is None:
                raise AttackFailure(
                    f"operand sweep at {sweep_cell:#x}: probe gadget broke"
                )
            addr = events[step_index].data_read
            decoded = (addr >> 8) & 0xFF if extract_high else addr & 0xFF
            table[candidate] = decoded
            seen.add(decoded)
        if len(seen) != 256:
            raise AttackFailure(
                f"operand table at cell {sweep_cell:#x} is not a bijection "
                f"({len(seen)} distinct values)"
            )
        return table

    # -- phase 3: find the port writer ------------------------------------------

    def _find_out(self, cell: int, prefix: Dict[int, int],
                  step_index: int) -> int:
        for candidate in range(256):
            setup = dict(prefix)
            setup[cell] = candidate
            events = self._probe(setup, step_index + 1)
            if len(events) <= step_index:
                continue
            ev = events[step_index]
            if ev.port_write is not None and ev.next_pc == cell + 1 \
                    and ev.data_read is None and ev.data_write is None:
                return candidate
        raise AttackFailure(f"no port-writing instruction found at {cell:#x}")

    # -- phase 5 helpers: the gadget's own cells ---------------------------------

    def _find_fall_through0(self) -> int:
        """A 1-byte fall-through at address 0, from the phase-1 signatures."""
        for candidate, sig in self._signatures0.items():
            shape, port, data_read, data_write, halted = sig
            if shape == 1 and not (port or data_read or data_write or halted):
                return candidate
        raise AttackFailure("no single-byte fall-through exists at address 0")

    def _tabulate_d3(self) -> List[int]:
        """Build D_3 by forging a read instruction at address 1.

        D_1/D_2 inverses let the attacker write the ``MOV A, addr16`` opcode
        at cell 1 and a fixed low operand at cell 2; cell 3 becomes the high
        operand, and sweeping it reads D_3 off the bus.
        """
        e1 = _invert(self.d1)
        e2 = _invert(self.d2)
        fall0 = self._find_fall_through0()
        fixed = {0: fall0, 1: e1[Op.MOV_A_DIR], 2: e2[self.SAFE_ADDR & 0xFF]}
        return self._tabulate(3, fixed, extract_high=True, step_index=1)

    def _decode_cell0(self) -> Tuple[int, Optional[Set[int]]]:
        """Decode the factory byte at cell 0 from its recorded behaviour.

        Returns (representative plaintext, ambiguity set or None).
        """
        factory0 = self._factory[0]
        sig = self._signatures0[factory0]
        shape, port, data_read, data_write, halted = sig

        if halted:
            return Op.HALT, None
        if port:
            return Op.OUT, None
        if data_read and shape == 3:
            return Op.MOV_A_DIR, None
        if data_write and shape == 3:
            return Op.MOV_DIR_A, None
        if data_read and shape == 1:
            return Op.MOVI_A, None
        if data_write and shape == 1:
            return Op.MOVI_ST, None
        if shape == 4:
            return Op.DJNZ, None
        if shape == 3:
            return Op.MOV_R_IMM, None
        if shape == "jump":
            return self._decode_jump0(factory0)
        if shape == 2:
            return self._decode_two_byte0(factory0)
        return self._decode_one_byte0(factory0)

    def _decode_jump0(self, factory0: int) -> Tuple[int, Optional[Set[int]]]:
        """Separate RET from the taken-branch family using the known tables."""
        # Re-run with known operand bytes: a branch lands at
        # D_1(op1) | D_2(op2)<<8; RET lands at 0 (zeroed stack) regardless.
        e1, e2 = _invert(self.d1), _invert(self.d2)
        target = 0x0123 % self.board.memory_size
        events = self._probe(
            {0: factory0, 1: e1[target & 0xFF], 2: e2[target >> 8]}, 1
        )
        if events[0].next_pc == target:
            # JMP, JZ (A=0: taken) and CALL are equivalent from reset.
            ambiguous = {Op.JMP, Op.JZ, Op.CALL}
            return Op.JMP, ambiguous
        return Op.RET, None

    def _decode_two_byte0(self, factory0: int) -> Tuple[int, Optional[Set[int]]]:
        """Split the 2-byte class by whether the port shows the operand."""
        e1, e2 = _invert(self.d1), _invert(self.d2)
        outputs = []
        for value in (0x05, 0x5A):
            # [factory0, operand, forged OUT at 2]: port shows A afterwards.
            events = self._probe(
                {0: factory0, 1: e1[value], 2: e2[Op.OUT]}, 2
            )
            if len(events) < 2 or events[1].port_write is None:
                raise AttackFailure("cell-0 2-byte probe lost its OUT")
            outputs.append(events[1].port_write)
        if outputs == [0x05, 0x5A]:
            # A = imm with A=0 entry: MOV/ADD/ORL/XRL are indistinguishable.
            return Op.MOV_A_IMM, {Op.MOV_A_IMM, Op.ADD_A_IMM,
                                  Op.ORL_A_IMM, Op.XRL_A_IMM}
        # A stays 0: register-file ops and AND-with-zero collapse together.
        return Op.ANL_A_IMM, {Op.ANL_A_IMM, Op.MOV_A_R, Op.MOV_R_A,
                              Op.ADD_A_R, Op.SUB_A_R, Op.INC_R}

    def _decode_one_byte0(self, factory0: int) -> Tuple[int, Optional[Set[int]]]:
        """Split the 1-byte fall-through class via the accumulator."""
        e1 = _invert(self.d1)
        events = self._probe({0: factory0, 1: e1[Op.OUT]}, 2)
        if len(events) < 2 or events[1].port_write is None:
            raise AttackFailure("cell-0 1-byte probe lost its OUT")
        a_after = events[1].port_write
        if a_after == 1:
            return Op.INC_A, None
        if a_after == 0xFF:
            return Op.DEC_A, None
        # NOP, PUSH A, POP A and undefined opcodes are architecturally
        # silent from reset.
        undefined = set(range(256)) - set(INSTRUCTION_LENGTHS)
        return Op.NOP, {Op.NOP, Op.PUSH_A, Op.POP_A} | undefined

    # -- phase 4: the dump ----------------------------------------------------------

    def _dump_byte(self, target: int) -> int:
        e1, e2 = _invert(self.d1), _invert(self.d2)
        setup = {
            0: self.mov0,
            1: e1[target & 0xFF],
            2: e2[(target >> 8) & 0xFF],
            3: self.out3,
        }
        events = self._probe(setup, 2)
        if len(events) < 2 or events[1].port_write is None:
            raise AttackFailure(f"dump gadget failed for target {target:#06x}")
        return events[1].port_write

    # -- entry point --------------------------------------------------------------------

    def run(self, dump_range: Optional[Tuple[int, int]] = None) -> AttackReport:
        """Execute the full attack; returns the recovered plaintext image."""
        start, end = dump_range or (0, self.board.memory_size)
        if start < 0 or end > self.board.memory_size or start >= end:
            raise ValueError(f"bad dump range [{start}, {end})")

        # Snapshot the whole ciphertext image before anything executes:
        # sweep candidates decoding to store instructions scribble on
        # arbitrary cells, and the dump must read factory bytes.
        snapshot = bytes(self.board.memory)
        for addr in range(4):
            self._factory[addr] = snapshot[addr]

        self._phase("classify-address0")
        self._classify_address0()
        self._log(f"E_0(MOV A,addr16) = {self.mov0:#04x}")

        self._phase("tabulate-operands")
        fixed = {0: self.mov0}
        self.d1 = self._tabulate(
            1, {**fixed, 2: 0}, extract_high=False, step_index=0
        )
        self.d2 = self._tabulate(
            2, {**fixed, 1: 0}, extract_high=True, step_index=0
        )
        self._log("D_1 and D_2 tabulated from bus addresses")

        self._phase("find-out")
        e1, e2 = _invert(self.d1), _invert(self.d2)
        prefix = {
            0: self.mov0,
            1: e1[self.SAFE_ADDR & 0xFF],
            2: e2[self.SAFE_ADDR >> 8],
        }
        self.out3 = self._find_out(3, prefix, step_index=1)
        self._log(f"E_3(OUT) = {self.out3:#04x}")

        self._phase("tabulate-d3")
        self.d3 = self._tabulate_d3()
        self._log("D_3 tabulated via forged read at address 1")

        # Undo any collateral damage from store-class probe candidates
        # before reading factory bytes back out.
        self.board.write_raw(0, snapshot)

        self._phase("dump")
        recovered = bytearray(end - start)
        for target in range(start, end):
            if target == 0:
                value, ambiguity = self._decode_cell0()
                if ambiguity:
                    self.ambiguous_cells[0] = ambiguity
            elif target == 1:
                value = self.d1[self._factory[1]]
            elif target == 2:
                value = self.d2[self._factory[2]]
            elif target == 3:
                value = self.d3[self._factory[3]]
            else:
                value = self._dump_byte(target)
            recovered[target - start] = value

        self._restore_all()
        return AttackReport(
            plaintext=bytes(recovered),
            ambiguous_cells=dict(self.ambiguous_cells),
            probe_runs=self.board.runs,
            steps_executed=self.board.steps_executed,
            d_tables={1: self.d1, 2: self.d2, 3: self.d3},
        )


def brute_force_tries(block_bits: int) -> int:
    """Probes needed to tabulate one address's decryption by experiment.

    2^8 = 256 for the DS5002FP; 2^64 for the DS5240 — the survey's
    "strengthened robustness" in one number.
    """
    if block_bits <= 0:
        raise ValueError(f"block_bits must be positive, got {block_bits}")
    return 1 << block_bits


def block_diffusion_probe(cipher: TweakableFeistel, tweak: int = 0,
                          trials: int = 64) -> float:
    """Average fraction of output bits flipped by single-bit input changes.

    For the 64-bit DS5240-class cipher this sits near 0.5 across the block:
    a one-byte probe garbles all eight bytes, denying byte-at-a-time search
    the per-cell independence the DS5002FP attack needs.
    """
    total_bits = 0
    flipped = 0
    base = 0x0123456789ABCDEF & ((1 << cipher.block_bits) - 1)
    reference = cipher.encrypt_int(base, tweak)
    for bit in range(min(trials, cipher.block_bits)):
        probed = cipher.encrypt_int(base ^ (1 << bit), tweak)
        flipped += bin(probed ^ reference).count("1")
        total_bits += cipher.block_bits
    return flipped / total_bits if total_bits else 0.0
