"""Access-pattern side channel: what survives perfect bus encryption.

Every engine the survey covers encrypts the *data* lines; none hides the
*addresses* or the *timing* of external accesses (address scrambling only
applies a fixed permutation).  A passive probe therefore still learns:

* the victim's working-set size (distinct lines touched),
* its control-flow character (sequential runs vs scattered jumps),
* its read/write mix,
* with the page-wise VLSI engine, the page-level access sequence directly
  from the fault pattern.

This module turns those observations into classifiers, making the leak —
the eventual motivation for ORAM, years after the survey — measurable with
the same probes used everywhere else in the package.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Union

from ..obs import TraceEvent
from ..sim.bus import BusTransaction
from .probe import BusProbe

__all__ = ["AccessPatternProfile", "bus_transactions", "profile_probe",
           "classify_pattern", "page_sequence"]

#: Anything a capture can arrive as: a probe, a recording sink, or a raw
#: event/transaction sequence.
CaptureSource = Union[BusProbe, Iterable[TraceEvent],
                      Iterable[BusTransaction]]


def bus_transactions(source: CaptureSource) -> List[BusTransaction]:
    """Normalize any capture source to a list of bus transactions.

    Accepts a :class:`BusProbe`, any object exposing ``transactions``
    (legacy probes) or ``events`` (e.g. :class:`repro.obs.RecordingSink`),
    or a plain iterable of :class:`TraceEvent` / :class:`BusTransaction`.
    Non-bus events are discarded — the attacker only sees the chip
    boundary.
    """
    items = getattr(source, "transactions", None)
    if items is None:
        items = getattr(source, "events", source)
    out: List[BusTransaction] = []
    for item in items:
        if isinstance(item, BusTransaction):
            out.append(item)
        elif isinstance(item, TraceEvent):
            if item.kind == "bus-read" or item.kind == "bus-write":
                out.append(BusTransaction(
                    op=item.kind[4:], addr=item.addr, data=item.data,
                    cycle=item.cycle,
                ))
    return out


@dataclass
class AccessPatternProfile:
    """Behavioural fingerprint extracted from a bus capture."""

    transactions: int
    distinct_addresses: int
    working_set_bytes: int
    sequential_fraction: float   # fraction of consecutive-line transitions
    write_fraction: float
    revisit_fraction: float      # fraction of reads to already-seen lines

    @property
    def looks_sequential(self) -> bool:
        return self.sequential_fraction > 0.5

    @property
    def looks_random(self) -> bool:
        return self.sequential_fraction < 0.2


def profile_probe(probe: CaptureSource, line_size: int = 32
                  ) -> AccessPatternProfile:
    """Fingerprint a capture (reads only for ordering; all ops for mix)."""
    txns = bus_transactions(probe)
    reads = [t for t in txns if t.op == "read"]
    writes = [t for t in txns if t.op == "write"]
    total = len(reads) + len(writes)
    if not reads:
        return AccessPatternProfile(
            transactions=total, distinct_addresses=0, working_set_bytes=0,
            sequential_fraction=0.0,
            write_fraction=1.0 if writes else 0.0,
            revisit_fraction=0.0,
        )

    lines = [t.addr // line_size for t in reads]
    sequential = sum(
        1 for a, b in zip(lines, lines[1:]) if b == a + 1
    )
    seen = set()
    revisits = 0
    for line in lines:
        if line in seen:
            revisits += 1
        seen.add(line)
    sizes = {t.addr: len(t.data) for t in reads}
    return AccessPatternProfile(
        transactions=total,
        distinct_addresses=len(seen),
        working_set_bytes=sum(
            size for addr, size in sizes.items()
        ),
        sequential_fraction=sequential / max(1, len(lines) - 1),
        write_fraction=len(writes) / total if total else 0.0,
        revisit_fraction=revisits / len(lines),
    )


def classify_pattern(probe: CaptureSource, line_size: int = 32) -> str:
    """Label a capture 'sequential', 'random' or 'mixed' — code vs data
    behaviour recovered through the encryption."""
    prof = profile_probe(probe, line_size)
    if prof.looks_sequential:
        return "sequential"
    if prof.looks_random:
        return "random"
    return "mixed"


def page_sequence(probe: CaptureSource, page_size: int,
                  min_burst_bytes: int = 256) -> List[int]:
    """Recover the page-access order from a page-DMA engine's bus bursts.

    The VLSI engine moves whole pages: each fault is a long read burst at a
    page-aligned address.  The sequence of such bursts *is* the victim's
    page-level access trace, encryption notwithstanding.
    """
    pages = []
    for t in bus_transactions(probe):
        if t.op == "read" and len(t.data) >= min_burst_bytes \
                and t.addr % page_size == 0:
            pages.append(t.addr // page_size)
    return pages
