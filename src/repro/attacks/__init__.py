"""Attack substrate: the adversaries the survey's engines must resist.

Passive bus probing, ECB/statistical distinguishers, known-plaintext
dictionaries, Kuhn's cipher instruction search (the DS5002FP break),
IV birthday analysis, brute-force cost models and the IBM adversary
taxonomy.
"""

from .access_pattern import (
    AccessPatternProfile,
    classify_pattern,
    page_sequence,
    profile_probe,
)
from .birthday import (
    collision_probability,
    count_collisions,
    expected_writes_to_collision,
    first_collision_index,
    iv_reuse_leak,
)
from .correlation import (
    CorrelationAttackResult,
    correlate,
    geffe_correlation_attack,
    recover_register,
)
from .brute_force import (
    CLASS_I_ADVERSARY,
    CLASS_II_ADVERSARY,
    CLASS_III_ADVERSARY,
    BruteForceModel,
    effective_key_bits_after,
    moore_speedup,
    years_to_break,
)
from .ecb_analysis import (
    CiphertextAnalysis,
    analyze_ciphertext,
    ecb_distinguisher,
    matching_block_pairs,
)
from .known_plaintext import KnownPlaintextDictionary
from .kuhn import (
    AttackFailure,
    AttackReport,
    DallasBoard,
    KuhnAttack,
    block_diffusion_probe,
    brute_force_tries,
)
from .kuhn_scrambled import PortBasedKuhnAttack, ScrambledDallasBoard
from .probe import BusProbe
from .taxonomy import (
    ACTIVE_ATTACKS,
    CLASS_CAPABILITIES,
    ENGINE_RATINGS,
    AttackerClass,
    Capability,
    EngineSecurityRating,
    attack_class_required,
    rate_engine,
)

__all__ = [
    "AccessPatternProfile", "classify_pattern", "page_sequence",
    "profile_probe",
    "collision_probability", "count_collisions",
    "expected_writes_to_collision", "first_collision_index", "iv_reuse_leak",
    "CLASS_I_ADVERSARY", "CLASS_II_ADVERSARY", "CLASS_III_ADVERSARY",
    "BruteForceModel", "effective_key_bits_after", "moore_speedup",
    "years_to_break",
    "CorrelationAttackResult", "correlate", "geffe_correlation_attack",
    "recover_register",
    "CiphertextAnalysis", "analyze_ciphertext", "ecb_distinguisher",
    "matching_block_pairs",
    "KnownPlaintextDictionary",
    "AttackFailure", "AttackReport", "DallasBoard", "KuhnAttack",
    "block_diffusion_probe", "brute_force_tries",
    "PortBasedKuhnAttack", "ScrambledDallasBoard",
    "BusProbe",
    "ACTIVE_ATTACKS", "CLASS_CAPABILITIES", "ENGINE_RATINGS",
    "AttackerClass", "Capability", "EngineSecurityRating",
    "attack_class_required", "rate_engine",
]
