"""Cipher Instruction Search against an address-scrambled DS5002FP.

The real DS5002FP enciphered the *address bus* as well as the data bus
(survey §3: "all data and addresses are in decrypted form inside the CPU
and encrypted outside").  That kills the bus-address shortcut of
:class:`repro.attacks.kuhn.KuhnAttack` (operand values can no longer be
read off the data-address pins) — but not the attack.  Kuhn's actual
procedure was port-based, and this module reproduces it:

* the logical->physical map is *learned from the bus*: each executed
  instruction's fetch addresses reveal where consecutive logical cells
  live physically (the CPU itself walks the permutation for the attacker);
* decryption tables are tabulated through the **parallel port**: a forged
  ``[loader, operand, OUT]`` gadget prints D(operand) for all 256 values —
  the loader class (``MOV/ADD/ORL/XRL A,#imm``) is exactly identity on the
  immediate from the reset state A = 0;
* the dump gadget is the same ``MOV A,addr16; OUT`` pair, with operands
  forged through the recovered tables (operands are *logical* addresses —
  the CPU applies the scrambler itself).

Works identically on the unscrambled board (the map learns out to be the
identity), demonstrating that address scrambling raises the probe count by
a small constant only — the security of the scheme still collapses with the
8-bit data block.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..crypto.address_scrambler import AddressScrambler
from ..crypto.feistel import SmallBlockCipher
from ..isa.mcu import INSTRUCTION_LENGTHS, MCU, Op, StepEvent
from .kuhn import AttackFailure, AttackReport, _invert

__all__ = ["ScrambledDallasBoard", "PortBasedKuhnAttack"]


class ScrambledDallasBoard:
    """DS5002FP with data *and* address encryption, exposed at board level."""

    def __init__(self, cipher: SmallBlockCipher, firmware: bytes,
                 memory_size: int = 1024,
                 scrambler: Optional[AddressScrambler] = None):
        if len(firmware) > memory_size:
            raise ValueError("firmware larger than external memory")
        self.memory_size = memory_size
        self.scrambler = scrambler
        self.memory = bytearray(memory_size)
        padded = bytes(firmware).ljust(memory_size, b"\x00")
        for logical in range(memory_size):
            phys = scrambler.scramble(logical) if scrambler else logical
            self.memory[phys] = cipher.encrypt_byte(phys, padded[logical])
        self._mcu = MCU(
            self.memory,
            decrypt=cipher.decrypt_byte,
            encrypt=cipher.encrypt_byte,
            translate=scrambler.scramble if scrambler else None,
        )
        self.runs = 0
        self.steps_executed = 0

    # -- attacker API (physical addresses only) --------------------------

    def read_raw(self, addr: int, nbytes: int = 1) -> bytes:
        return bytes(self.memory[addr: addr + nbytes])

    def write_raw(self, addr: int, data: bytes) -> None:
        self.memory[addr: addr + len(data)] = data

    def reset_and_step(self, steps: int) -> List[StepEvent]:
        self._mcu.reset()
        self._mcu.port_log.clear()
        self.runs += 1
        events = []
        for _ in range(steps):
            event = self._mcu.step()
            events.append(event)
            self.steps_executed += 1
            if event.halted:
                break
        return events


_Signature = Tuple[object, bool, bool, bool, bool]


def _sig(event: StepEvent) -> _Signature:
    return (
        len(event.fetched) if not event.halted else 1,
        event.port_write is not None,
        event.data_read is not None,
        event.data_write is not None,
        event.halted,
    )


class PortBasedKuhnAttack:
    """The scrambler-immune Cipher Instruction Search."""

    def __init__(self, board, verbose: bool = False):
        self.board = board
        self.verbose = verbose
        self._snapshot = bytes(board.memory)
        #: logical cell index -> physical address (learned from the bus).
        self.phys: Dict[int, int] = {}
        #: logical cell -> decryption table.
        self.d_tables: Dict[int, List[int]] = {}
        self._injected: Set[int] = set()
        self._signatures0: Dict[int, _Signature] = {}
        self.ambiguous_cells: Dict[int, Set[int]] = {}
        self.mov0 = -1
        self._outs: Dict[int, int] = {}     # logical cell -> E_cell(OUT)
        self._falls: Dict[int, int] = {}    # logical cell -> fall-through

    # -- probing -----------------------------------------------------------

    def _probe(self, setup: Dict[int, int], steps: int) -> List[StepEvent]:
        """Inject {physical: byte} and run from reset."""
        for addr, value in setup.items():
            self._injected.add(addr)
            self.board.write_raw(addr, bytes([value]))
        return self.board.reset_and_step(steps)

    def _restore(self) -> None:
        self.board.write_raw(0, self._snapshot)
        self._injected.clear()

    def _log(self, message: str) -> None:
        if self.verbose:
            print(f"[kuhn-port] {message}")

    def _runway(self, depth: int) -> Dict[int, int]:
        """Injection map covering logical cells 0..depth-1 with known
        fall-throughs (OUT counts: it falls through)."""
        setup = {}
        for cell in range(depth):
            if cell in self._falls:
                setup[self.phys[cell]] = self._falls[cell]
            elif cell in self._outs:
                setup[self.phys[cell]] = self._outs[cell]
            else:
                raise AttackFailure(f"no runway filler for cell {cell}")
        return setup

    # -- phase 0/1: discover the map and classify cell 0 ---------------------

    def _discover_p0(self) -> None:
        events = self.board.reset_and_step(1)
        self.board.runs -= 0  # counted; the factory byte executed once
        self.phys[0] = events[0].fetched[0]
        self._log(f"phys[0] = {self.phys[0]:#06x}")

    def _classify_cell0(self) -> None:
        p0 = self.phys[0]
        matches = []
        for candidate in range(256):
            events = self._probe({p0: candidate}, 1)
            ev = events[0]
            self._signatures0[candidate] = _sig(ev)
            shape, port, data_read, data_write, halted = _sig(ev)
            if shape == 3 and data_read and not data_write and not port:
                matches.append((candidate, list(ev.fetched)))
        if len(matches) != 1:
            raise AttackFailure(
                f"MOV A,addr16 search at cell 0: {len(matches)} candidates"
            )
        self.mov0, fetched = matches[0]
        # Its operand fetches reveal where logical 1 and 2 live.
        self.phys[1], self.phys[2] = fetched[1], fetched[2]
        self._log(
            f"E_0(MOV A,addr16) = {self.mov0:#04x}; "
            f"phys[1] = {self.phys[1]:#06x}, phys[2] = {self.phys[2]:#06x}"
        )

    def _discover_next_cell(self, cell: int, runway_steps: int) -> None:
        """Learn phys[cell] by running the runway and watching the fetch."""
        if cell in self.phys:
            return
        setup = self._runway(cell)
        events = self._probe(setup, runway_steps + 1)
        if len(events) <= runway_steps:
            raise AttackFailure(f"runway stalled before cell {cell}")
        self.phys[cell] = events[runway_steps].fetched[0]
        self._log(f"phys[{cell}] = {self.phys[cell]:#06x}")

    def _find_fall(self, cell: int) -> int:
        """A 1-byte no-effect *fall-through* encoding at logical ``cell``.

        RET shares the 1-byte no-effect signature but jumps to logical 0
        (zeroed stack) — so the candidate must also be seen handing control
        to the next cell, whose physical address is already known.
        """
        next_phys = self.phys[cell + 1]
        prefix = self._runway(cell)
        candidates = range(256)
        if cell == 0:
            candidates = [
                c for c, sig in self._signatures0.items()
                if sig[0] == 1 and not any(sig[1:])
            ]
        for candidate in candidates:
            setup = dict(prefix)
            setup[self.phys[cell]] = candidate
            events = self._probe(setup, cell + 2)
            if len(events) <= cell + 1:
                continue
            ev = events[cell]
            shape, port, data_read, data_write, halted = _sig(ev)
            if shape != 1 or port or data_read or data_write or halted:
                continue
            following = events[cell + 1]
            if following.fetched and following.fetched[0] == next_phys:
                return candidate
        raise AttackFailure(f"no fall-through at cell {cell}")

    def _find_out(self, cell: int) -> int:
        """E_cell(OUT): the port-writing 1-byte instruction."""
        prefix = self._runway(cell)
        for candidate in range(256):
            setup = dict(prefix)
            setup[self.phys[cell]] = candidate
            events = self._probe(setup, cell + 1)
            if len(events) <= cell:
                continue
            ev = events[cell]
            shape, port, data_read, data_write, halted = _sig(ev)
            if port and shape == 1 and not (data_read or data_write):
                return candidate
        raise AttackFailure(f"no port writer at cell {cell}")

    # -- table building through the port -------------------------------------

    def _find_loader0(self) -> int:
        """A 2-byte identity-class immediate instruction at cell 0."""
        out2 = self._outs[2]
        two_byte = [
            c for c, sig in self._signatures0.items()
            if sig[0] == 2 and not any(sig[1:])
        ]
        for candidate in two_byte:
            outputs = []
            for v in (0x11, 0xB7):
                setup = {
                    self.phys[0]: candidate,
                    self.phys[1]: v,
                    self.phys[2]: out2,
                }
                events = self._probe(setup, 2)
                if len(events) < 2 or events[1].port_write is None:
                    outputs = []
                    break
                outputs.append(events[1].port_write)
            if len(outputs) == 2 and outputs[0] != outputs[1]:
                return candidate
        raise AttackFailure("no immediate loader found at cell 0")

    def _tabulate_via_port(self, cell: int, loader_cell: int,
                           loader_byte: int, out_cell: int) -> List[int]:
        """D table for ``cell`` = the operand of a loader at ``cell - 1``."""
        prefix = self._runway(loader_cell)
        prefix[self.phys[loader_cell]] = loader_byte
        out_setup = self.phys[out_cell]
        table = [0] * 256
        seen = set()
        steps = loader_cell + 2
        for candidate in range(256):
            setup = dict(prefix)
            setup[self.phys[cell]] = candidate
            setup[out_setup] = self._outs[out_cell]
            events = self._probe(setup, steps)
            if len(events) < steps or events[steps - 1].port_write is None:
                raise AttackFailure(
                    f"port tabulation at cell {cell} lost its OUT"
                )
            value = events[steps - 1].port_write
            table[candidate] = value
            seen.add(value)
        if len(seen) != 256:
            raise AttackFailure(
                f"port table at cell {cell} is not a bijection "
                f"({len(seen)} values)"
            )
        return table

    # -- dumping ----------------------------------------------------------------

    def _dump_byte(self, target: int) -> int:
        e1 = _invert(self.d_tables[1])
        e2 = _invert(self.d_tables[2])
        setup = {
            self.phys[0]: self.mov0,
            self.phys[1]: e1[target & 0xFF],
            self.phys[2]: e2[(target >> 8) & 0xFF],
            self.phys[3]: self._outs[3],
        }
        events = self._probe(setup, 2)
        if len(events) < 2 or events[1].port_write is None:
            raise AttackFailure(f"dump failed for logical {target:#06x}")
        return events[1].port_write

    def _decode_cell0(self) -> Tuple[int, Optional[Set[int]]]:
        factory0 = self._snapshot[self.phys[0]]
        shape, port, data_read, data_write, halted = \
            self._signatures0[factory0]
        if halted:
            return Op.HALT, None
        if port:
            return Op.OUT, None
        if data_read:
            return (Op.MOV_A_DIR if shape == 3 else Op.MOVI_A), None
        if data_write:
            return (Op.MOV_DIR_A if shape == 3 else Op.MOVI_ST), None
        if shape == 4:
            return Op.DJNZ, None
        if shape == 3:
            # MOV_R_IMM or a branch: both fetch 3 bytes.  Separate by the
            # next fetch: the branch lands at the decoded target, which with
            # forged operands is logical 2 (phys known); MOV_R_IMM falls
            # through to logical 3.
            e1 = _invert(self.d_tables[1])
            e2 = _invert(self.d_tables[2])
            events = self._probe({
                self.phys[0]: factory0,
                self.phys[1]: e1[0x02],
                self.phys[2]: e2[0x00],
            }, 2)
            if len(events) >= 2 and events[1].fetched and \
                    events[1].fetched[0] == self.phys[2]:
                return Op.JMP, {Op.JMP, Op.JZ, Op.CALL}
            return Op.MOV_R_IMM, None
        if shape == 1 and not any((port, data_read, data_write, halted)):
            e1 = _invert(self.d_tables[1])
            events = self._probe(
                {self.phys[0]: factory0, self.phys[1]: e1[Op.OUT]}, 2
            )
            if len(events) > 1 and events[1].fetched and \
                    events[1].fetched[0] != self.phys[1]:
                # Control left the fall-through path: a 1-byte jumper.
                return Op.RET, None
            a_after = events[1].port_write if len(events) > 1 else None
            if a_after == 1:
                return Op.INC_A, None
            if a_after == 0xFF:
                return Op.DEC_A, None
            undefined = set(range(256)) - set(INSTRUCTION_LENGTHS)
            return Op.NOP, {Op.NOP, Op.PUSH_A, Op.POP_A} | undefined
        if shape == 2:
            out2 = self._outs[2]
            e1 = _invert(self.d_tables[1])
            outputs = []
            for v in (0x21, 0x7E):
                events = self._probe({
                    self.phys[0]: factory0,
                    self.phys[1]: e1[v],
                    self.phys[2]: out2,
                }, 2)
                outputs.append(
                    events[1].port_write if len(events) > 1 else None
                )
            if outputs == [0x21, 0x7E]:
                return Op.MOV_A_IMM, {Op.MOV_A_IMM, Op.ADD_A_IMM,
                                      Op.ORL_A_IMM, Op.XRL_A_IMM}
            return Op.ANL_A_IMM, {Op.ANL_A_IMM, Op.MOV_A_R, Op.MOV_R_A,
                                  Op.ADD_A_R, Op.SUB_A_R, Op.INC_R}
        return Op.NOP, set(range(256))

    # -- entry point -----------------------------------------------------------------

    def run(self, dump_range: Optional[Tuple[int, int]] = None) -> AttackReport:
        start, end = dump_range or (0, self.board.memory_size)
        if start < 0 or end > self.board.memory_size or start >= end:
            raise ValueError(f"bad dump range [{start}, {end})")

        self._discover_p0()
        self._classify_cell0()
        self._falls[0] = self._find_fall(0)
        self._discover_next_cell(1, 1)  # already known; keeps the map honest
        self._falls[1] = self._find_fall(1)
        self._outs[2] = self._find_out(2)
        self._discover_next_cell(3, 3)
        self._outs[3] = self._find_out(3)

        loader0 = self._find_loader0()
        self._log(f"loader at cell 0 = {loader0:#04x}")
        self.d_tables[1] = self._tabulate_via_port(1, 0, loader0, 2)
        e1 = _invert(self.d_tables[1])
        self.d_tables[2] = self._tabulate_via_port(
            2, 1, e1[Op.MOV_A_IMM], 3
        )
        e2 = _invert(self.d_tables[2])
        self._discover_next_cell(4, 4)
        self._outs[4] = self._find_out(4)
        self.d_tables[3] = self._tabulate_via_port(
            3, 2, e2[Op.MOV_A_IMM], 4
        )
        self._log("D tables for cells 1-3 tabulated through the port")

        # Clean collateral damage, then dump.
        self._restore()
        recovered = bytearray(end - start)
        for target in range(start, end):
            if target == 0:
                value, ambiguity = self._decode_cell0()
                if ambiguity:
                    self.ambiguous_cells[0] = ambiguity
            elif target in (1, 2, 3):
                value = self.d_tables[target][
                    self._snapshot[self.phys[target]]
                ]
            else:
                value = self._dump_byte(target)
            recovered[target - start] = value

        self._restore()
        return AttackReport(
            plaintext=bytes(recovered),
            ambiguous_cells=dict(self.ambiguous_cells),
            probe_runs=self.board.runs,
            steps_executed=self.board.steps_executed,
            d_tables=dict(self.d_tables),
        )
