"""Statistical analysis of observed ciphertext: the ECB leak and friends.

§2.2: with ECB "a same data will be ciphered to the same value; which is the
main security weakness of that mode".  These tools quantify the weakness on
real bus captures and memory dumps: block-repetition statistics, a
known-structure distinguisher, and a scoring function comparing engines
(E03, E06).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..compression.entropy import (
    block_collision_rate,
    chi_square_uniform,
    shannon_entropy,
)

__all__ = ["CiphertextAnalysis", "analyze_ciphertext", "ecb_distinguisher",
           "matching_block_pairs"]


@dataclass
class CiphertextAnalysis:
    """Summary statistics of one ciphertext image/capture."""

    nbytes: int
    entropy_bits_per_byte: float
    chi_square: float
    block_size: int
    block_collision_rate: float
    distinct_blocks: int
    total_blocks: int

    @property
    def looks_random(self) -> bool:
        """A crude pass/fail: does the image resemble a uniform source?

        The plug-in entropy estimator is biased low by roughly
        (K - 1) / (2 N ln 2) bits for K observed symbols over N samples
        (Miller-Madow), so the acceptance margin widens for small captures;
        block repeats must also stay within the birthday expectation.
        """
        n = max(2, self.nbytes)
        expected_entropy = min(8.0, math.log2(n))
        bias = min(256, n) / (2 * n * math.log(2))
        entropy_ok = self.entropy_bits_per_byte > \
            expected_entropy - bias - 0.35
        # Expected collisions for uniform blocks ~ n^2 / 2^(8B+1): tiny.
        collisions = self.total_blocks - self.distinct_blocks
        birthday = self.total_blocks ** 2 / 2 ** (8 * self.block_size + 1)
        collision_ok = collisions <= max(1.0, 3 * birthday)
        return entropy_ok and collision_ok


def analyze_ciphertext(data: bytes, block_size: int = 8) -> CiphertextAnalysis:
    """Compute the statistics the distinguishers use."""
    blocks = [
        bytes(data[i: i + block_size])
        for i in range(0, len(data) - block_size + 1, block_size)
    ]
    return CiphertextAnalysis(
        nbytes=len(data),
        entropy_bits_per_byte=shannon_entropy(data),
        chi_square=chi_square_uniform(data),
        block_size=block_size,
        block_collision_rate=block_collision_rate(data, block_size),
        distinct_blocks=len(set(blocks)),
        total_blocks=len(blocks),
    )


def ecb_distinguisher(data: bytes, block_size: int = 8) -> bool:
    """True when the image betrays deterministic per-block encryption.

    Verdict: repeated ciphertext blocks far above the birthday expectation
    for a uniform source.  Structured plaintext under ECB triggers this;
    CBC/CTR output does not.
    """
    analysis = analyze_ciphertext(data, block_size)
    collisions = analysis.total_blocks - analysis.distinct_blocks
    birthday = analysis.total_blocks ** 2 / 2 ** (8 * block_size + 1)
    return collisions > max(2.0, 10 * birthday)


def matching_block_pairs(data: bytes, block_size: int = 8
                         ) -> List[Tuple[int, int]]:
    """Offsets (i, j) of equal ciphertext blocks — the plaintext-equality
    oracle ECB hands the attacker."""
    seen: Dict[bytes, int] = {}
    pairs = []
    for i in range(0, len(data) - block_size + 1, block_size):
        block = bytes(data[i: i + block_size])
        if block in seen:
            pairs.append((seen[block], i))
        else:
            seen[block] = i
    return pairs
