"""Correlation attack on the Geffe keystream generator.

§4 requires the CPU-cache keystream to be "sufficiently random to be
secure".  The Geffe generator is the classic cautionary tale: its output
equals LFSR *b*'s output 75% of the time and LFSR *c*'s 75% of the time, so
each register falls to an **independent** exhaustive search — total work
2^|b| + 2^|c| + 2^|a| instead of the naive 2^(|a|+|b|+|c|).

:func:`geffe_correlation_attack` runs that attack end to end against an
observed keystream and recovers all three seeds, quantifying exactly why a
"cheap keystream unit" is not a substitute for a cipher.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from ..crypto.lfsr import LFSR

__all__ = ["CorrelationAttackResult", "correlate", "recover_register",
           "geffe_correlation_attack"]


def correlate(bits_a: Sequence[int], bits_b: Sequence[int]) -> float:
    """Fraction of positions where two bit sequences agree."""
    if len(bits_a) != len(bits_b) or not bits_a:
        raise ValueError("sequences must be equal-length and non-empty")
    return sum(a == b for a, b in zip(bits_a, bits_b)) / len(bits_a)


def recover_register(
    keystream: Sequence[int],
    taps: Tuple[int, ...],
    threshold: float = 0.70,
) -> Optional[int]:
    """Exhaustively search one LFSR's seed by output correlation.

    Returns the seed whose sequence agrees with the keystream at or above
    ``threshold`` (0.75 expected for Geffe's b and c registers; a wrong
    seed hovers near 0.5).
    """
    width = max(taps)
    n = len(keystream)
    for seed in range(1, 1 << width):
        candidate = LFSR(taps, seed).bits(n)
        if correlate(candidate, keystream) >= threshold:
            return seed
    return None


@dataclass
class CorrelationAttackResult:
    seed_a: Optional[int]
    seed_b: Optional[int]
    seed_c: Optional[int]
    candidates_tested: int
    naive_keyspace: int

    @property
    def succeeded(self) -> bool:
        return None not in (self.seed_a, self.seed_b, self.seed_c)

    @property
    def speedup(self) -> float:
        """Work reduction vs brute-forcing the joint key."""
        if self.candidates_tested == 0:
            return 0.0
        return self.naive_keyspace / self.candidates_tested


def geffe_correlation_attack(
    keystream: Sequence[int],
    taps_a: Tuple[int, ...],
    taps_b: Tuple[int, ...],
    taps_c: Tuple[int, ...],
    threshold: float = 0.70,
) -> CorrelationAttackResult:
    """Recover all three Geffe register seeds from keystream bits.

    Registers *b* and *c* fall to independent correlation searches; with
    both known, the control register *a* is the unique seed making
    ``(a & b) ^ (~a & c)`` reproduce the keystream exactly.
    """
    width_a = max(taps_a)
    width_b = max(taps_b)
    width_c = max(taps_c)
    n = len(keystream)
    tested = 0

    seed_b = None
    for seed in range(1, 1 << width_b):
        tested += 1
        if correlate(LFSR(taps_b, seed).bits(n), keystream) >= threshold:
            seed_b = seed
            break

    seed_c = None
    for seed in range(1, 1 << width_c):
        tested += 1
        if correlate(LFSR(taps_c, seed).bits(n), keystream) >= threshold:
            seed_c = seed
            break

    seed_a = None
    if seed_b is not None and seed_c is not None:
        bits_b = LFSR(taps_b, seed_b).bits(n)
        bits_c = LFSR(taps_c, seed_c).bits(n)
        for seed in range(1, 1 << width_a):
            tested += 1
            bits_a = LFSR(taps_a, seed).bits(n)
            if all(
                ((a & b) ^ ((a ^ 1) & c)) == k
                for a, b, c, k in zip(bits_a, bits_b, bits_c, keystream)
            ):
                seed_a = seed
                break

    return CorrelationAttackResult(
        seed_a=seed_a,
        seed_b=seed_b,
        seed_c=seed_c,
        candidates_tested=tested,
        naive_keyspace=1 << (width_a + width_b + width_c),
    )
