"""Passive bus probe.

"Observing both memory content and system execution can be done through
simple board-level probing at almost no cost" — this is that probe.  Attach
it to a :class:`repro.sim.bus.Bus` and it records every transaction crossing
the chip boundary, exactly as a logic analyzer on the PCB traces would.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional

from ..sim.bus import BusTransaction

__all__ = ["BusProbe"]


class BusProbe:
    """Records bus transactions for offline analysis."""

    def __init__(self, max_transactions: Optional[int] = None):
        self.transactions: List[BusTransaction] = []
        self.max_transactions = max_transactions

    def __call__(self, txn: BusTransaction) -> None:
        if self.max_transactions is None or \
                len(self.transactions) < self.max_transactions:
            self.transactions.append(txn)

    # -- reconstruction helpers ------------------------------------------

    def observed_bytes(self, op: Optional[str] = None) -> bytes:
        """Concatenated payloads (optionally restricted to reads or writes)."""
        return b"".join(
            t.data for t in self.transactions if op is None or t.op == op
        )

    def reconstruct_memory(self) -> Dict[int, bytes]:
        """Rebuild the attacker's view of memory from observed transfers.

        Later transfers overwrite earlier ones — the attacker ends up with
        the freshest bytes seen at each address.
        """
        view: Dict[int, bytes] = {}
        for txn in self.transactions:
            view[txn.addr] = txn.data
        return view

    def address_histogram(self) -> Counter:
        """How often each address was touched — the access-pattern leak.

        Even a perfect cipher leaves addresses in clear on a conventional
        bus; this is the residual leakage every surveyed engine shares.
        """
        return Counter(t.addr for t in self.transactions)

    def repeated_payloads(self) -> Counter:
        """Payloads seen more than once (the ECB-style determinism leak)."""
        counts = Counter(t.data for t in self.transactions)
        return Counter({d: c for d, c in counts.items() if c > 1})

    @property
    def bytes_observed(self) -> int:
        return sum(len(t.data) for t in self.transactions)

    def clear(self) -> None:
        self.transactions.clear()
