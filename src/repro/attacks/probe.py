"""Passive bus probe.

"Observing both memory content and system execution can be done through
simple board-level probing at almost no cost" — this is that probe.  The
probe is an :class:`repro.obs.EventSink`: pass it as the ``sink=`` of a
:class:`repro.sim.system.SecureSystem` (or install it ambiently with
:func:`repro.obs.scope`) and it records every bus transfer crossing the
chip boundary, exactly as a logic analyzer on the PCB traces would.  The
legacy attachment point — ``bus.attach_probe(probe)`` calling the probe
with each :class:`~repro.sim.bus.BusTransaction` — still works.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional

from ..obs import EventSink, TraceEvent
from ..sim.bus import BusTransaction

__all__ = ["BusProbe"]


class BusProbe(EventSink):
    """Records bus transactions for offline analysis.

    As an event sink the probe sees the full trace stream but keeps only
    the chip-boundary transfers (``bus-read`` / ``bus-write`` events) —
    a board-level attacker cannot see cache hits or cipher internals.
    """

    def __init__(self, max_transactions: Optional[int] = None):
        self.transactions: List[BusTransaction] = []
        self.max_transactions = max_transactions

    def _record(self, txn: BusTransaction) -> None:
        if self.max_transactions is None or \
                len(self.transactions) < self.max_transactions:
            self.transactions.append(txn)

    def emit(self, event: TraceEvent) -> None:
        if event.kind == "bus-read" or event.kind == "bus-write":
            self._record(BusTransaction(
                op=event.kind[4:], addr=event.addr, data=event.data,
                cycle=event.cycle,
            ))

    def __call__(self, txn: BusTransaction) -> None:
        """Legacy ``bus.attach_probe`` entry point."""
        self._record(txn)

    # -- reconstruction helpers ------------------------------------------

    def observed_bytes(self, op: Optional[str] = None) -> bytes:
        """Concatenated payloads (optionally restricted to reads or writes)."""
        return b"".join(
            t.data for t in self.transactions if op is None or t.op == op
        )

    def reconstruct_memory(self) -> Dict[int, bytes]:
        """Rebuild the attacker's view of memory from observed transfers.

        Later transfers overwrite earlier ones — the attacker ends up with
        the freshest bytes seen at each address.
        """
        view: Dict[int, bytes] = {}
        for txn in self.transactions:
            view[txn.addr] = txn.data
        return view

    def address_histogram(self) -> Counter:
        """How often each address was touched — the access-pattern leak.

        Even a perfect cipher leaves addresses in clear on a conventional
        bus; this is the residual leakage every surveyed engine shares.
        """
        return Counter(t.addr for t in self.transactions)

    def repeated_payloads(self) -> Counter:
        """Payloads seen more than once (the ECB-style determinism leak)."""
        counts = Counter(t.data for t in self.transactions)
        return Counter({d: c for d, c in counts.items() if c > 1})

    @property
    def bytes_observed(self) -> int:
        return sum(len(t.data) for t in self.transactions)

    def clear(self) -> None:
        self.transactions.clear()
