"""Brute-force cost modeling and the cryptosystem-lifetime rule.

"All cryptographic schemes are confronted to the temporal problem: the key
must be long enough to thwart the 'Brute force attack'. ... It's usually
considered that a cryptosystem has a lifetime of at most 10 years due to
the increase in computer processing power (Moore's law)."

These helpers turn that paragraph into numbers: key-search time for an
adversary with a given trial rate, the Moore's-law discount over a
deployment lifetime, and the per-class adversary budgets of the IBM
taxonomy (which :mod:`repro.attacks.taxonomy` ties to concrete engines).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["BruteForceModel", "years_to_break", "moore_speedup",
           "effective_key_bits_after"]

_SECONDS_PER_YEAR = 365.25 * 24 * 3600
#: Moore's-law doubling period used by the survey-era rule of thumb.
MOORE_DOUBLING_YEARS = 1.5


def moore_speedup(years: float) -> float:
    """Computing-power multiplier after ``years`` of Moore's law."""
    if years < 0:
        raise ValueError(f"years must be >= 0, got {years}")
    return 2.0 ** (years / MOORE_DOUBLING_YEARS)


def effective_key_bits_after(key_bits: int, years: float) -> float:
    """Key strength in bits after the adversary's hardware improves.

    Each Moore doubling shaves one bit: the ten-year lifetime the survey
    quotes costs a design ~6-7 bits of margin.
    """
    return key_bits - years / MOORE_DOUBLING_YEARS


def years_to_break(key_bits: int, trials_per_second: float) -> float:
    """Expected years to find a key by exhaustive search (half the space)."""
    if trials_per_second <= 0:
        raise ValueError("trials_per_second must be positive")
    expected_trials = 2.0 ** (key_bits - 1)
    return expected_trials / trials_per_second / _SECONDS_PER_YEAR


@dataclass(frozen=True)
class BruteForceModel:
    """An adversary's key-search capability."""

    name: str
    trials_per_second: float

    def years_to_break(self, key_bits: int, after_years: float = 0.0) -> float:
        """Expected search time, optionally after Moore's-law growth."""
        rate = self.trials_per_second * moore_speedup(after_years)
        return years_to_break(key_bits, rate)

    def breaks_within_lifetime(self, key_bits: int,
                               lifetime_years: float = 10.0) -> bool:
        """Does the key fall within the survey's 10-year lifetime rule?

        Conservatively evaluates the search with end-of-life hardware.
        """
        return self.years_to_break(
            key_bits, after_years=lifetime_years
        ) <= lifetime_years


#: Survey-era (2005) adversary classes, calibrated to the IBM taxonomy.
CLASS_I_ADVERSARY = BruteForceModel("class-I clever outsider", 1e6)
CLASS_II_ADVERSARY = BruteForceModel("class-II knowledgeable insider", 1e9)
CLASS_III_ADVERSARY = BruteForceModel("class-III funded organization", 1e13)
