"""Birthday-bound analysis of initialization vectors (AEGIS, E11).

"The generation of the initialization vector (IV) needed by the CBC mode
proves really secure: it is composed by the block address and by a random
vector; to thwart the birthday attack it is possible to replace the random
vector by a counter."

A *random* per-write vector of v bits collides with probability ≈
1 - exp(-n(n-1) / 2^(v+1)) after n writes; two writes of the same line with
the same vector reuse an IV, and CBC with a repeated IV leaks the XOR
relationship of the first plaintext blocks.  A *counter* vector never
repeats until it wraps at 2^v.  These functions compute the bound, count
collisions empirically from an engine's issued vectors, and demonstrate the
leak itself.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Sequence

__all__ = [
    "collision_probability",
    "expected_writes_to_collision",
    "count_collisions",
    "first_collision_index",
    "iv_reuse_leak",
]


def collision_probability(n_writes: int, vector_bits: int) -> float:
    """Probability at least two of ``n_writes`` random vectors collide."""
    if n_writes < 2:
        return 0.0
    if vector_bits <= 0:
        raise ValueError(f"vector_bits must be positive, got {vector_bits}")
    space = 2.0 ** vector_bits
    if n_writes >= space:
        return 1.0
    exponent = -n_writes * (n_writes - 1) / (2.0 * space)
    return 1.0 - math.exp(exponent)


def expected_writes_to_collision(vector_bits: int) -> float:
    """The birthday bound: ≈ sqrt(pi/2 * 2^v) writes until a repeat."""
    if vector_bits <= 0:
        raise ValueError(f"vector_bits must be positive, got {vector_bits}")
    return math.sqrt(math.pi / 2.0 * 2.0 ** vector_bits)


def count_collisions(vectors: Sequence[int]) -> int:
    """Number of reused vector values in an observed sequence."""
    counts = Counter(vectors)
    return sum(c - 1 for c in counts.values() if c > 1)


def first_collision_index(vectors: Sequence[int]) -> int:
    """Index of the first reuse, or -1 if none."""
    seen = set()
    for i, v in enumerate(vectors):
        if v in seen:
            return i
        seen.add(v)
    return -1


def iv_reuse_leak(ct_a: bytes, ct_b: bytes, pt_a: bytes) -> bytes:
    """What IV reuse hands the attacker under CBC (first block).

    With C1 = E(P1 xor IV) for both messages, equal first-block ciphertext
    implies equal first-block plaintext; more generally an attacker who
    knows one plaintext learns whether the other matches block by block.
    This helper returns the positions where ``ct_a`` and ``ct_b`` agree —
    at those blocks ``pt_b`` equals the known ``pt_a``.
    """
    if len(ct_a) != len(ct_b):
        raise ValueError("ciphertext length mismatch")
    recovered = bytearray(len(ct_a))
    for i in range(0, len(ct_a) - 15, 16):
        if ct_a[i: i + 16] == ct_b[i: i + 16] and i < len(pt_a):
            recovered[i: i + 16] = pt_a[i: i + 16]
        else:
            break  # CBC chains: divergence stops equality propagation
    return bytes(recovered)
