"""Known-plaintext dictionary attack on deterministic bus encryption.

When the engine enciphers deterministically (Best, XOM's address-tweaked
ECB, the Dallas parts), an attacker who knows some (plaintext, address)
pairs — e.g. a public library linked into the protected program — learns
the corresponding ciphertexts and can recognize them anywhere they recur.
For engines *without* address tweaking the dictionary even transfers across
addresses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

__all__ = ["KnownPlaintextDictionary"]


@dataclass
class KnownPlaintextDictionary:
    """Maps observed ciphertext blocks back to known plaintext.

    ``address_tweaked`` controls whether entries are keyed by
    (address, ciphertext) — matching engines whose transform depends on the
    address — or by ciphertext alone (pure ECB, where knowledge transfers
    between locations).
    """

    block_size: int = 8
    address_tweaked: bool = True
    _table: Dict[Tuple, bytes] = field(default_factory=dict)

    def _key(self, addr: int, ciphertext: bytes):
        if self.address_tweaked:
            return (addr, ciphertext)
        return ciphertext

    def learn(self, addr: int, plaintext: bytes, ciphertext: bytes) -> None:
        """Record known (plaintext, ciphertext) pairs, block by block."""
        if len(plaintext) != len(ciphertext):
            raise ValueError("plaintext/ciphertext length mismatch")
        for i in range(0, len(plaintext) - self.block_size + 1,
                       self.block_size):
            ct = bytes(ciphertext[i: i + self.block_size])
            pt = bytes(plaintext[i: i + self.block_size])
            self._table[self._key(addr + i, ct)] = pt

    def recover(self, addr: int, ciphertext: bytes) -> Optional[bytes]:
        """Look one ciphertext block up."""
        return self._table.get(self._key(addr, bytes(ciphertext)))

    def recover_image(self, base_addr: int, image: bytes) -> Tuple[bytes, float]:
        """Decode as much of an image as the dictionary covers.

        Returns (plaintext with unknown blocks zeroed, recovered fraction).
        """
        out = bytearray(len(image))
        hits = 0
        total = 0
        for i in range(0, len(image) - self.block_size + 1, self.block_size):
            total += 1
            block = self.recover(base_addr + i, image[i: i + self.block_size])
            if block is not None:
                out[i: i + self.block_size] = block
                hits += 1
        fraction = hits / total if total else 0.0
        return bytes(out), fraction

    def __len__(self) -> int:
        return len(self._table)
