"""IBM adversary taxonomy ([4], survey §2.3) applied to the engines.

"Adversaries were grouped into three classes, in ascending order, depending
on their expected abilities and attack strengths": class I clever
outsiders, class II knowledgeable insiders, class III funded organizations.
"Throughout this paper, the consumer market is targeted ... only attacks
and adversaries classified in class II are taken into account."

This module encodes the classes, their capabilities, and a rating function
that assigns each engine the highest class it withstands — the security
column of the E14 survey table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import IntEnum
from typing import Dict, FrozenSet, List

__all__ = ["AttackerClass", "Capability", "CLASS_CAPABILITIES",
           "ACTIVE_ATTACKS", "attack_class_required",
           "EngineSecurityRating", "rate_engine", "ENGINE_RATINGS"]


class AttackerClass(IntEnum):
    """IBM's three adversary classes (higher = stronger)."""

    CLASS_I = 1     # clever outsiders
    CLASS_II = 2    # knowledgeable insiders
    CLASS_III = 3   # funded organizations

    def describe(self) -> str:
        return {
            AttackerClass.CLASS_I:
                "clever outsiders: moderately sophisticated equipment, "
                "exploit existing weaknesses",
            AttackerClass.CLASS_II:
                "knowledgeable insiders: specialized education, highly "
                "sophisticated tools, board-level access",
            AttackerClass.CLASS_III:
                "funded organizations: teams of specialists, in-depth "
                "analysis, the most sophisticated analysis tools",
        }[self]


class Capability:
    """Concrete abilities attacks in this package rely on."""

    BUS_PROBE = "bus-probe"                       # passive PCB probing
    MEMORY_DUMP = "memory-dump"                   # read external memory
    MEMORY_INJECT = "memory-inject"               # write external memory
    CHOSEN_EXECUTION = "chosen-execution"         # reset/single-step control
    STATISTICAL_ANALYSIS = "statistical-analysis"
    KEY_SEARCH_SMALL = "key-search-small"         # up to ~2^40 work
    KEY_SEARCH_LARGE = "key-search-large"         # up to ~2^60 work
    ON_CHIP_PROBE = "on-chip-probe"               # invasive die access


CLASS_CAPABILITIES: Dict[AttackerClass, FrozenSet[str]] = {
    AttackerClass.CLASS_I: frozenset({
        Capability.BUS_PROBE,
        Capability.MEMORY_DUMP,
        Capability.STATISTICAL_ANALYSIS,
    }),
    AttackerClass.CLASS_II: frozenset({
        Capability.BUS_PROBE,
        Capability.MEMORY_DUMP,
        Capability.MEMORY_INJECT,
        Capability.CHOSEN_EXECUTION,
        Capability.STATISTICAL_ANALYSIS,
        Capability.KEY_SEARCH_SMALL,
    }),
    AttackerClass.CLASS_III: frozenset({
        Capability.BUS_PROBE,
        Capability.MEMORY_DUMP,
        Capability.MEMORY_INJECT,
        Capability.CHOSEN_EXECUTION,
        Capability.STATISTICAL_ANALYSIS,
        Capability.KEY_SEARCH_SMALL,
        Capability.KEY_SEARCH_LARGE,
        Capability.ON_CHIP_PROBE,
    }),
}


#: Capabilities each active fault class (:data:`repro.faults.FAULT_KINDS`)
#: requires of the adversary: spoofing forged ciphertext or glitching the
#: wires only needs board-level write access, while splicing and replay
#: first *record* valid blocks (dump) before injecting them elsewhere or
#: later.  All four sit inside class II — exactly the "knowledgeable
#: insider" the survey says the consumer market must assume.
ACTIVE_ATTACKS: Dict[str, FrozenSet[str]] = {
    "spoof": frozenset({Capability.MEMORY_INJECT}),
    "splice": frozenset({Capability.MEMORY_DUMP, Capability.MEMORY_INJECT}),
    "replay": frozenset({Capability.MEMORY_DUMP, Capability.MEMORY_INJECT}),
    "glitch": frozenset({Capability.MEMORY_INJECT}),
}


def attack_class_required(kind: str) -> AttackerClass:
    """The weakest IBM class whose capabilities mount one fault kind."""
    try:
        needed = ACTIVE_ATTACKS[kind]
    except KeyError:
        raise KeyError(
            f"unknown fault kind {kind!r}; known: {sorted(ACTIVE_ATTACKS)}"
        ) from None
    for attacker in sorted(AttackerClass):
        if needed <= CLASS_CAPABILITIES[attacker]:
            return attacker
    raise AssertionError("class III holds every modeled capability")


@dataclass
class EngineSecurityRating:
    """Which adversary class an engine's confidentiality survives."""

    engine_name: str
    #: Capabilities sufficient to break the engine's confidentiality.
    broken_by: List[FrozenSet[str]] = field(default_factory=list)
    notes: str = ""

    def withstands(self, attacker: AttackerClass) -> bool:
        caps = CLASS_CAPABILITIES[attacker]
        return not any(needed <= caps for needed in self.broken_by)

    @property
    def highest_class_withstood(self) -> int:
        """0 if even class I breaks it; 3 if nothing in the model does.

        Capabilities are cumulative across classes, so ``withstands`` is
        monotone: walking up in strength, the first broken class ends it.
        """
        level = 0
        for attacker in sorted(AttackerClass):
            if not self.withstands(attacker):
                break
            level = int(attacker)
        return level


def rate_engine(engine_name: str) -> EngineSecurityRating:
    """Security rating for one of the built-in engines (by ``engine.name``)."""
    if engine_name not in ENGINE_RATINGS:
        raise KeyError(
            f"unknown engine {engine_name!r}; known: {sorted(ENGINE_RATINGS)}"
        )
    return ENGINE_RATINGS[engine_name]


ENGINE_RATINGS: Dict[str, EngineSecurityRating] = {
    "plaintext": EngineSecurityRating(
        "plaintext",
        broken_by=[frozenset({Capability.BUS_PROBE})],
        notes="no protection: the bus carries cleartext",
    ),
    "best-1979": EngineSecurityRating(
        "best-1979",
        broken_by=[frozenset({Capability.MEMORY_DUMP,
                              Capability.STATISTICAL_ANALYSIS})],
        notes="shallow substitution/transposition leaks statistics (E06)",
    ),
    "ds5002fp": EngineSecurityRating(
        "ds5002fp",
        broken_by=[frozenset({Capability.MEMORY_INJECT,
                              Capability.CHOSEN_EXECUTION})],
        notes="8-bit blocks fall to cipher instruction search (E05)",
    ),
    "ds5240": EngineSecurityRating(
        "ds5240",
        broken_by=[frozenset({Capability.KEY_SEARCH_LARGE})],
        notes="single-DES key (56 bits) within class-III search budgets",
    ),
    "vlsi-secure-dma": EngineSecurityRating(
        "vlsi-secure-dma",
        broken_by=[frozenset({Capability.ON_CHIP_PROBE})],
        notes="3DES-CBC pages; trusts the OS controlling the DMA",
    ),
    "general-instrument-3des-cbc": EngineSecurityRating(
        "general-instrument-3des-cbc",
        broken_by=[frozenset({Capability.ON_CHIP_PROBE})],
        notes="3DES-CBC + keyed hash; integrity included",
    ),
    "gilmont-3des": EngineSecurityRating(
        "gilmont-3des",
        broken_by=[frozenset({Capability.ON_CHIP_PROBE})],
        notes="pipelined 3DES; static code only",
    ),
    "xom-aes": EngineSecurityRating(
        "xom-aes",
        broken_by=[frozenset({Capability.ON_CHIP_PROBE})],
        notes="address-tweaked AES; deterministic per address "
              "(equal writes observable)",
    ),
    "aegis-aes-cbc": EngineSecurityRating(
        "aegis-aes-cbc",
        broken_by=[frozenset({Capability.ON_CHIP_PROBE})],
        notes="AES-CBC per line with versioned IVs",
    ),
    "stream-ctr": EngineSecurityRating(
        "stream-ctr",
        broken_by=[frozenset({Capability.ON_CHIP_PROBE})],
        notes="seekable CTR pads with per-line versions",
    ),
    "compress+encrypt": EngineSecurityRating(
        "compress+encrypt",
        broken_by=[frozenset({Capability.ON_CHIP_PROBE})],
        notes="compression before ciphering raises message entropy",
    ),
    "cpu-cache-stream": EngineSecurityRating(
        "cpu-cache-stream",
        broken_by=[frozenset({Capability.ON_CHIP_PROBE})],
        notes="§4: the on-chip keystream store itself becomes the target "
              "against class III",
    ),
}
