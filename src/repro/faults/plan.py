"""Typed fault plans: one deterministic active attack each.

A :class:`FaultPlan` names a fault *kind* from the survey's modification
taxonomy, the address window it targets, and the trigger deciding which
access fires it.  Plans are frozen and carry their own seed, so a
campaign's behaviour is a pure function of its plans.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["FAULT_KINDS", "FaultPlan"]

#: The modification-attack taxonomy (survey §2.3 / §5):
#: ``spoof``   — inject forged ciphertext at an address;
#: ``splice``  — relocate a valid block from another address;
#: ``replay``  — re-serve previously recorded (stale) memory state;
#: ``glitch``  — transient random bit-flips on the wires (read data only).
FAULT_KINDS = ("spoof", "splice", "replay", "glitch")


@dataclass(frozen=True)
class FaultPlan:
    """One deterministic fault to inject.

    Parameters
    ----------
    kind:
        One of :data:`FAULT_KINDS`.
    addr, size:
        The physical byte window the fault targets.  A read is eligible
        to trigger the plan when it overlaps this window.
    nth_read:
        Fire on the n-th eligible read (1-based).  Mutually exclusive
        with ``after_ops``.
    after_ops:
        Fire on the first eligible read once the injector has seen at
        least this many total memory operations — the "trigger point in
        accesses" form.
    source, source_size:
        ``splice`` only: the donor window whose bytes are relocated onto
        ``addr`` (``source_size`` defaults to ``size``).
    bits:
        ``glitch`` only: how many bit positions to flip.
    seed:
        Seeds the forged bytes (``spoof``) / flipped positions
        (``glitch``); identical plans always inject identical faults.

    When neither ``nth_read`` nor ``after_ops`` is given the plan is
    **armed-mode**: it fires on the first eligible read after the
    campaign calls :meth:`repro.faults.FaultInjector.arm` — the precise
    way for a script to say "tamper right before *this* fetch".
    """

    kind: str
    addr: int
    size: int = 32
    nth_read: Optional[int] = None
    after_ops: Optional[int] = None
    source: Optional[int] = None
    source_size: Optional[int] = None
    bits: int = 2
    seed: int = 2005

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; known: {FAULT_KINDS}"
            )
        if self.size <= 0:
            raise ValueError(f"size must be positive, got {self.size}")
        if self.addr < 0:
            raise ValueError(f"addr must be >= 0, got {self.addr}")
        if self.kind == "splice" and self.source is None:
            raise ValueError("splice plans need a source address")
        if self.kind == "glitch" and self.bits <= 0:
            raise ValueError(f"glitch needs bits >= 1, got {self.bits}")
        if self.nth_read is not None and self.after_ops is not None:
            raise ValueError("nth_read and after_ops are mutually exclusive")
        if self.nth_read is not None and self.nth_read < 1:
            raise ValueError(f"nth_read is 1-based, got {self.nth_read}")

    @property
    def armed_mode(self) -> bool:
        """True when the plan waits for an explicit ``arm()`` call."""
        return self.nth_read is None and self.after_ops is None

    def overlaps(self, addr: int, nbytes: int) -> bool:
        """Does an access of ``nbytes`` at ``addr`` touch this window?"""
        return addr < self.addr + self.size and self.addr < addr + nbytes
