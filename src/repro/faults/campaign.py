"""Deterministic attack campaigns: one engine, one fault class, one verdict.

A campaign is the survey's class-II adversary run as a script.  The
attacker first *recons* the engine (records which physical window a fetch
of the logical target actually touches — address scrambling and
compression move it), then drives a standard access pattern:

1. write a first version of the target line,
2. ``snapshot()`` the whole external memory (the attacker's board dump),
3. sweep the image (fills + occasional writes) to age on-chip caches,
4. write a second version of the target line,
5. sweep again (evicts tag/tree/page state so the audit re-fetches),
6. ``arm()`` the injector and audit-fetch the target.

The fault fires on the audit fetch; the outcome is classified as
``detected`` (the engine's verdict path raised
:class:`~repro.core.engine.TamperDetected`), ``silent-corruption`` (the
returned plaintext is wrong and nothing objected), ``missed`` (the fault
had no observable effect — e.g. replaying a memory that never changed), or
``clean`` for the fault-free baseline.  Every byte derives from the
campaign seed, so the matrix is reproducible across runs and workers.
"""

from __future__ import annotations

import pickle
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from ..core import TamperDetected
from ..core.engine import BusEncryptionEngine, MemoryPort
from ..core.registry import engine_names, make_engine
from ..crypto import DRBG
from ..obs import TraceEvent, current_sink
from ..sim.bus import Bus
from ..sim.memory import MainMemory, MemoryConfig
from .injector import FaultInjector, ReadRecorder
from .plan import FAULT_KINDS, FaultPlan

__all__ = [
    "CAMPAIGN_OVERRIDES", "CampaignResult", "campaign_image",
    "campaign_labels", "detection_matrix", "run_campaign",
]

#: Campaign geometry.  The image is sixteen GI regions / eight VLSI pages;
#: the target line sits mid-region (exercising the CBC chain restart) and
#: the splice donor is a nearby line in the same protected zone.
IMAGE_SIZE = 8192
LINE = 32
TARGET = 2272
DONOR = 2336
#: The zone the sweeps never touch, so the audit fetch of TARGET is a real
#: re-fetch from external memory, not an on-chip cache hit.
PROTECT_LO, PROTECT_HI = 2048, 3072
MEM_SIZE = 1 << 21

#: Per-engine parameter overrides that make the campaign meaningful:
#: the Merkle region must exactly cover the installed image, and the VLSI
#: page buffer must be small enough that the sweeps can evict the target
#: page (with the default 8 pages the whole image stays on-chip and no
#: audit fetch ever reaches the tampered memory).
CAMPAIGN_OVERRIDES: Dict[str, Dict[str, object]] = {
    "merkle-stream": {"region_size": IMAGE_SIZE},
    "vlsi": {"buffer_pages": 2},
}

#: Ablation labels beyond the registry names: the E15 replay hole
#: (integrity tags without on-chip versions) and the GI patent's optional
#: keyed-hash authentication, off by default in the registry.
EXTRA_LABELS: Dict[str, Tuple[str, Dict[str, object]]] = {
    "integrity-stream-unversioned": ("integrity-stream", {"versioned": False}),
    "gi-auth": ("gi", {"authenticate": True}),
}

#: Engines whose image is immutable (compressed code cannot be rewritten
#: in place); their campaign script has no write phases and audits against
#: the original image bytes.
READ_ONLY_LABELS = frozenset({"compress"})

#: (label, seed) -> (target window, donor window); recon depends only on
#: the engine's geometry, so campaigns for the four fault kinds share it.
_RECON_CACHE: Dict[Tuple[str, int], Tuple[Tuple[int, int], Tuple[int, int]]] = {}

#: seed -> the campaign image those bytes deterministically expand to.
_IMAGE_CACHE: "OrderedDict[int, bytes]" = OrderedDict()
_IMAGE_CACHE_MAX = 16

#: (label, seed) -> pristine post-install state: a deep copy of the engine
#: (kernels shared — their schedules are immutable) plus a full dump of the
#: external memory.  Recon and the campaign proper use the same rig, so the
#: expensive part — building the engine and offline-encrypting the 256-line
#: image (Merkle tree, tag regions, per-line IVs...) — runs once per
#: (label, seed) instead of once per use.
_PRISTINE_CACHE: "OrderedDict[Tuple[str, int], Tuple[BusEncryptionEngine, bytes]]" = OrderedDict()
_PRISTINE_CACHE_MAX = 8


def campaign_image(seed: int) -> bytes:
    """The deterministic campaign image for ``seed`` (cached)."""
    image = _IMAGE_CACHE.get(seed)
    if image is None:
        image = DRBG(seed).random_bytes(IMAGE_SIZE)
        _IMAGE_CACHE[seed] = image
        while len(_IMAGE_CACHE) > _IMAGE_CACHE_MAX:
            _IMAGE_CACHE.popitem(last=False)
    else:
        _IMAGE_CACHE.move_to_end(seed)
    return image


@dataclass
class CampaignResult:
    """Outcome of one engine x fault-class campaign."""

    label: str               # campaign label (registry name or ablation)
    engine_name: str         # the engine object's display name
    kind: Optional[str]      # fault kind, None for the fault-free baseline
    expected_detect: bool    # whether engine.detects claims this kind
    injected: int            # faults that actually fired
    detected: bool           # TamperDetected raised at the audit fetch
    corrupted: bool          # audit plaintext differed from expectation
    detail: str = ""
    checks: int = 0          # engine.verdicts.checks after the campaign
    tampers: int = 0         # engine.verdicts.tampers after the campaign

    @property
    def verdict(self) -> str:
        if self.kind is None:
            return "clean" if not (self.detected or self.corrupted) else "broken"
        if self.detected:
            return "detected"
        if self.corrupted:
            return "silent-corruption"
        return "missed"

    @property
    def conforms(self) -> bool:
        """Did the engine behave exactly as its ``detects`` set claims?"""
        if self.kind is None:
            return self.verdict == "clean"
        return self.detected == self.expected_detect

    def to_metrics(self) -> Dict[str, object]:
        return {
            "label": self.label,
            "engine": self.engine_name,
            "kind": self.kind or "baseline",
            "verdict": self.verdict,
            "expected_detect": self.expected_detect,
            "injected": self.injected,
            "detected": self.detected,
            "corrupted": self.corrupted,
            "checks": self.checks,
            "tampers": self.tampers,
            "conforms": self.conforms,
        }


def campaign_labels() -> List[str]:
    """Every campaign target: all registry engines plus the ablations."""
    return sorted(list(engine_names()) + list(EXTRA_LABELS))


def _build_engine(label: str) -> BusEncryptionEngine:
    name, extra = EXTRA_LABELS.get(label, (label, {}))
    overrides = dict(CAMPAIGN_OVERRIDES.get(name, {}))
    overrides.update(extra)
    return make_engine(name, **overrides)


def _rig(label: str, image: bytes, seed: Optional[int] = None):
    """Fresh engine + memory + port with the image installed.

    With a ``seed``, the pristine post-install state is cached per
    (label, seed) and every call gets an independent clone of it — the
    campaign's recon pass and attack run share one install instead of
    re-encrypting the image twice.  Without a seed the rig is built cold.
    """
    if seed is None:
        engine = _build_engine(label)
        memory = MainMemory(MemoryConfig(size=MEM_SIZE))
        port = MemoryPort(memory, Bus())
        engine.install_image(memory, 0, image, line_size=LINE)
        return engine, memory, port
    key = (label, seed)
    cached = _PRISTINE_CACHE.get(key)
    if cached is None:
        engine = _build_engine(label)
        memory = MainMemory(MemoryConfig(size=MEM_SIZE))
        engine.install_image(memory, 0, image, line_size=LINE)
        # A pickled snapshot clones several times faster than deepcopy
        # (the schedule-heavy engines dominate campaign setup).
        cached = (pickle.dumps(engine, pickle.HIGHEST_PROTOCOL),
                  memory.dump(0, MEM_SIZE))
        _PRISTINE_CACHE[key] = cached
        while len(_PRISTINE_CACHE) > _PRISTINE_CACHE_MAX:
            _PRISTINE_CACHE.popitem(last=False)
    else:
        _PRISTINE_CACHE.move_to_end(key)
    engine = pickle.loads(cached[0])
    memory = MainMemory(MemoryConfig(size=MEM_SIZE))
    memory.load_image(0, cached[1])
    port = MemoryPort(memory, Bus())
    return engine, memory, port


def _recorded_window(reads: List[Tuple[int, int]], logical: int
                     ) -> Tuple[int, int]:
    """The physical window an attacker targets for a logical address.

    If any recorded read overlaps the logical line, the engine stores it
    in place and the logical window is the target.  Otherwise (address
    scrambling, compression) the first read of the fetch *is* the line's
    physical home on the bus.
    """
    for addr, size in reads:
        if addr < logical + LINE and logical < addr + size:
            return logical, LINE
    if reads:
        return reads[0]
    return logical, LINE


def _windows(label: str, image: bytes, seed: int
             ) -> Tuple[Tuple[int, int], Tuple[int, int]]:
    key = (label, seed)
    cached = _RECON_CACHE.get(key)
    if cached is not None:
        return cached
    engine, memory, port = _rig(label, image, seed)
    windows = []
    for logical in (TARGET, DONOR):
        recorder = ReadRecorder(memory)
        with recorder:
            engine.fill_line(port, logical, LINE)
        windows.append(_recorded_window(recorder.reads, logical))
    result = (windows[0], windows[1])
    _RECON_CACHE[key] = result
    return result


def _make_plan(kind: str, target: Tuple[int, int], donor: Tuple[int, int],
               seed: int) -> FaultPlan:
    addr, size = target
    if kind == "splice":
        src_addr, src_size = donor
        return FaultPlan(kind, addr, size=size, source=src_addr,
                         source_size=src_size, seed=seed)
    return FaultPlan(kind, addr, size=size, seed=seed)


def _sweep(engine: BusEncryptionEngine, port: MemoryPort, stride: int,
           write_every: int, writes: bool, salt: int) -> None:
    """Age the engine: fill the image outside the protected zone with an
    occasional rewrite.  Even the quick stride keeps what the audit relies
    on: more distinct tag blocks than the shield's tag cache holds, and
    every VLSI page, so the target's on-chip copies are gone by then."""
    rng = DRBG(salt)
    for index, addr in enumerate(range(0, IMAGE_SIZE, stride)):
        if PROTECT_LO <= addr < PROTECT_HI:
            continue
        engine.fill_line(port, addr, LINE)
        if writes and index % write_every == 0:
            engine.write_line(port, addr, rng.random_bytes(LINE))


def run_campaign(label: str, kind: Optional[str] = None, seed: int = 2005,
                 quick: bool = False, sink=None) -> CampaignResult:
    """Run one engine through one fault class (or the clean baseline)."""
    if kind is not None and kind not in FAULT_KINDS:
        raise ValueError(
            f"unknown fault kind {kind!r}; known: {FAULT_KINDS}"
        )
    sink = sink if sink is not None else current_sink()
    image = campaign_image(seed)
    target, donor = _windows(label, image, seed)

    engine, memory, port = _rig(label, image, seed)
    engine.attach_sink(sink)
    read_only = label in READ_ONLY_LABELS
    plans = [] if kind is None else [_make_plan(kind, target, donor, seed)]
    injector = FaultInjector(memory, plans, sink=sink)
    stride, write_every = (128, 32) if quick else (32, 16)

    v2 = DRBG(seed + 2).random_bytes(LINE)
    expected = image[TARGET: TARGET + LINE] if read_only else v2
    detected = False
    corrupted = False
    detail = ""

    with injector:
        if not read_only:
            engine.write_line(port, TARGET, DRBG(seed + 1).random_bytes(LINE))
        injector.snapshot()
        _sweep(engine, port, stride, write_every,
               writes=not read_only, salt=seed + 3)
        if not read_only:
            engine.write_line(port, TARGET, v2)
        _sweep(engine, port, stride, write_every,
               writes=not read_only, salt=seed + 4)
        injector.arm()
        try:
            plaintext, _ = engine.fill_line(port, TARGET, LINE)
        except TamperDetected as exc:
            detected = True
            detail = str(exc)
        except Exception as exc:  # garbled compressed streams fail to decode
            corrupted = True
            detail = f"decode-error: {exc}"
        else:
            if bytes(plaintext[:LINE]) != expected:
                corrupted = True
                detail = "audit plaintext differs from last written version"

    if kind is not None and injector.injected == 0:
        detail = detail or "fault never fired"
    if sink is not None and kind is not None and injector.injected:
        outcome = "fault.detected" if detected else (
            "fault.silent" if corrupted else None
        )
        if outcome is not None:
            sink.emit(TraceEvent(
                kind=outcome, addr=plans[0].addr, size=plans[0].size,
                detail=kind,
            ))

    return CampaignResult(
        label=label,
        engine_name=engine.name,
        kind=kind,
        expected_detect=kind in engine.detects if kind else False,
        injected=injector.injected,
        detected=detected,
        corrupted=corrupted,
        detail=detail,
        checks=engine.verdicts.checks,
        tampers=engine.verdicts.tampers,
    )


def detection_matrix(results: Iterable[object]) -> Dict[str, object]:
    """Assemble campaign results into the engines x attacks matrix E19
    publishes into the metrics document.

    Accepts :class:`CampaignResult` objects or their ``to_metrics()``
    dicts (what the experiment runner's tasks return after their JSON
    round-trip), so the same function serves live runs and documents.
    """
    engines: Dict[str, Dict[str, object]] = {}
    for result in results:
        row = (result.to_metrics() if isinstance(result, CampaignResult)
               else dict(result))
        entry = engines.setdefault(row["label"], {
            "engine": row["engine"],
            "attacks": {},
        })
        entry["attacks"][row["kind"]] = {
            "verdict": row["verdict"],
            "expected_detect": row["expected_detect"],
            "injected": row["injected"],
            "conforms": row["conforms"],
        }
    return {
        "attack_kinds": list(FAULT_KINDS),
        "engines": {label: engines[label] for label in sorted(engines)},
    }
