"""The fault injector: an active interposer on the memory/bus layer.

:class:`FaultInjector` implements the :data:`repro.sim.memory.Interposer`
protocol and attaches to a :class:`repro.sim.memory.MainMemory` — from
that point it sees every access the engine's
:class:`~repro.core.engine.MemoryPort` services, counts them, and applies
its :class:`~repro.faults.plan.FaultPlan`\\ s when their triggers fire:

* ``spoof``/``splice`` rewrite the stored bytes (board-level memory
  modification — persistent until overwritten);
* ``replay`` rolls the entire memory array back to a snapshot the
  attacker recorded earlier (:meth:`FaultInjector.snapshot`);
* ``glitch`` flips bits only in the data *returned* to the chip — a
  transient wire fault the stored copy never sees.

Every applied fault emits a ``fault.injected`` :class:`repro.obs.
TraceEvent` and is appended to :attr:`FaultInjector.faults`, so campaigns
and counters agree on what happened.
"""

from __future__ import annotations

import random
from typing import Dict, List, NamedTuple, Optional, Sequence, Tuple

from ..crypto import DRBG
from ..obs import TraceEvent, current_sink
from .plan import FaultPlan

__all__ = ["FaultInjector", "FaultRecord", "ReadRecorder"]


class FaultRecord(NamedTuple):
    """One fault that actually fired."""

    kind: str          # plan kind
    addr: int          # plan window base
    size: int          # plan window size
    op_index: int      # memory-operation count at injection time
    read_addr: int     # the read that triggered it
    read_size: int


class ReadRecorder:
    """Passive interposer logging every read window (recon helper).

    Campaigns use it to learn an engine's *physical* access pattern — an
    address-scrambled or compressed engine does not fetch the logical
    target address, and the attacker (who only sees the bus) targets what
    actually crosses it.
    """

    def __init__(self, memory) -> None:
        self.memory = memory
        self.reads: List[Tuple[int, int]] = []

    def __call__(self, op: str, addr: int, data: bytes) -> bytes:
        if op == "read":
            self.reads.append((addr, len(data)))
        return data

    def __enter__(self) -> "ReadRecorder":
        self.memory.attach_interposer(self)
        return self

    def __exit__(self, *exc_info) -> None:
        self.memory.detach_interposer(self)


class FaultInjector:
    """Applies :class:`FaultPlan`\\ s to a :class:`MainMemory`'s traffic.

    Use as a context manager (attaches/detaches the interposer), or call
    :meth:`attach`/:meth:`detach` explicitly.  ``sink`` defaults to the
    ambient :func:`repro.obs.current_sink` at construction.
    """

    def __init__(self, memory, plans: Sequence[FaultPlan] = (),
                 sink=None) -> None:
        self.memory = memory
        self.plans: List[FaultPlan] = list(plans)
        self.sink = sink if sink is not None else current_sink()
        self.faults: List[FaultRecord] = []
        self.ops = 0
        self._armed = False
        self._fired: set = set()
        self._eligible_reads: Dict[int, int] = {}
        self._snapshot: Optional[bytes] = None

    # -- lifecycle ---------------------------------------------------------

    def attach(self) -> "FaultInjector":
        self.memory.attach_interposer(self)
        return self

    def detach(self) -> None:
        self.memory.detach_interposer(self)

    def __enter__(self) -> "FaultInjector":
        return self.attach()

    def __exit__(self, *exc_info) -> None:
        self.detach()

    # -- script-level triggers ---------------------------------------------

    def arm(self) -> None:
        """Let armed-mode plans fire on their next eligible read."""
        self._armed = True

    def disarm(self) -> None:
        self._armed = False

    def snapshot(self) -> None:
        """Record the entire memory array (the attacker's board dump).

        ``replay`` plans roll back to the most recent snapshot when they
        fire.  Call it at a quiescent script point so the recorded state
        is self-consistent (data *and* tags/tree nodes).
        """
        self._snapshot = self.memory.dump(0, self.memory.config.size)

    @property
    def injected(self) -> int:
        """Faults applied so far."""
        return len(self.faults)

    # -- interposer protocol -----------------------------------------------

    def __call__(self, op: str, addr: int, data: bytes) -> bytes:
        self.ops += 1
        if op != "read":
            return data
        for index, plan in enumerate(self.plans):
            if index in self._fired or not plan.overlaps(addr, len(data)):
                continue
            if not self._triggered(index, plan):
                continue
            self._fired.add(index)
            data = self._apply(plan, addr, data)
            self.faults.append(FaultRecord(
                kind=plan.kind, addr=plan.addr, size=plan.size,
                op_index=self.ops, read_addr=addr, read_size=len(data),
            ))
            if self.sink is not None:
                self.sink.emit(TraceEvent(
                    kind="fault.injected", addr=plan.addr, size=plan.size,
                    detail=plan.kind,
                ))
        return data

    def _triggered(self, index: int, plan: FaultPlan) -> bool:
        if plan.nth_read is not None:
            count = self._eligible_reads.get(index, 0) + 1
            self._eligible_reads[index] = count
            return count == plan.nth_read
        if plan.after_ops is not None:
            return self.ops >= plan.after_ops
        return self._armed

    # -- fault application --------------------------------------------------

    def _apply(self, plan: FaultPlan, addr: int, data: bytes) -> bytes:
        if plan.kind == "spoof":
            forged = DRBG(plan.seed).random_bytes(plan.size)
            self.memory.load_image(plan.addr, forged)
            return self.memory.dump(addr, len(data))
        if plan.kind == "splice":
            donor_size = plan.source_size or plan.size
            donor = self.memory.dump(plan.source, donor_size)
            self.memory.load_image(plan.addr, donor[: plan.size])
            return self.memory.dump(addr, len(data))
        if plan.kind == "replay":
            if self._snapshot is None:
                raise RuntimeError(
                    "replay plan fired before any snapshot() was recorded"
                )
            self.memory.load_image(0, self._snapshot)
            return self.memory.dump(addr, len(data))
        # glitch: transient — flip bits only in the returned beats that
        # overlap the plan window; memory keeps the clean bytes.
        lo = max(addr, plan.addr)
        hi = min(addr + len(data), plan.addr + plan.size)
        span_bits = (hi - lo) * 8
        rng = random.Random(plan.seed)
        flips = rng.sample(range(span_bits), min(plan.bits, span_bits))
        garbled = bytearray(data)
        base = lo - addr
        for bit in flips:
            garbled[base + bit // 8] ^= 1 << (bit % 8)
        return bytes(garbled)
