"""Deterministic fault injection: the survey's active attacker, executed.

The survey's §2.3 threat model gives the class-II adversary board-level
*write* access to external memory — "attacks based on the modification of
the fetched instructions" — and its security claims are claims about
which engines *detect* which modification class.  This package turns
those claims into runnable campaigns:

* :class:`FaultPlan` (:mod:`repro.faults.plan`) — one typed, seedable
  fault: ``spoof`` (forged ciphertext), ``splice`` (relocate a block to
  another address), ``replay`` (re-serve recorded stale state), ``glitch``
  (transient wire bit-flips), with triggers expressed in accesses
  (``nth_read`` / ``after_ops``) or armed explicitly at a script point;
* :class:`FaultInjector` (:mod:`repro.faults.injector`) — an interposer
  on the bus/memory layer (:meth:`repro.sim.memory.MainMemory.
  attach_interposer`) that applies plans and emits ``fault.injected``
  events on the :mod:`repro.obs` stream;
* :func:`run_campaign` (:mod:`repro.faults.campaign`) — the standard
  write/sweep/write/sweep/audit script that drives one engine through one
  attack and classifies the outcome (``detected`` / ``silent-corruption``
  / ``missed`` / ``clean``), plus :func:`detection_matrix` building the
  attack-class × engine matrix E19 publishes into the metrics document.

Everything is deterministic: plans carry their own seeds, campaigns
derive every byte from the campaign seed, and the matrix is byte-identical
across worker counts.
"""

from .campaign import (
    CAMPAIGN_OVERRIDES,
    CampaignResult,
    campaign_labels,
    detection_matrix,
    run_campaign,
)
from .injector import FaultInjector, FaultRecord, ReadRecorder
from .plan import FAULT_KINDS, FaultPlan

__all__ = [
    "FAULT_KINDS", "FaultPlan",
    "FaultInjector", "FaultRecord", "ReadRecorder",
    "CampaignResult", "run_campaign", "campaign_labels",
    "detection_matrix", "CAMPAIGN_OVERRIDES",
]
