"""repro — executable reproduction of "Hardware Engines for Bus Encryption:
A Survey of Existing Techniques" (Elbaz et al., DATE 2005).

The package builds every system the survey describes:

* :mod:`repro.crypto` — from-scratch ciphers (DES/3DES, AES, RC4, LFSRs,
  Best's substitution/transposition cipher, small tweakable Feistel, RSA,
  SHA-256/HMAC);
* :mod:`repro.sim` — a cycle-approximate, functionally accurate SoC model
  (cache, observable bus, external memory, pipelined cipher units, area);
* :mod:`repro.core` — the surveyed bus-encryption engines and the Figure-1
  distribution protocol;
* :mod:`repro.isa` — an 8051-flavoured MCU (the DS5002FP stand-in);
* :mod:`repro.attacks` — bus probing, statistical distinguishers, Kuhn's
  cipher instruction search, birthday/IV analysis, the IBM taxonomy;
* :mod:`repro.compression` — CodePack-style code compression and friends;
* :mod:`repro.obs` — the typed event stream every simulator layer reports
  through (sinks, scopes, counters, the trace CLI);
* :mod:`repro.traces` / :mod:`repro.analysis` — workloads and reporting.

Quick start (the stable facade is :mod:`repro.api`)::

    from repro.api import engine_overhead, make_engine, trace_experiment
    from repro.sim import SecureSystem
    from repro.traces import make_workload

    system = SecureSystem(engine=make_engine("aegis"))
    report = system.run(make_workload("mixed"))
    print(report.cycles, report.miss_rate)

    print(engine_overhead("stream", "mixed"))  # vs plaintext baseline
    print(trace_experiment("e02").format())    # one experiment's events
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
