"""Mergeable campaign metrics: shard documents and their reduction.

Each worker (or cache replay) contributes point results in whatever
order it finished them; this module folds them into one canonical
metrics document.  Determinism rules:

* points are keyed by name and always emitted in sorted-name order;
* aggregates are reduced over that sorted order, never arrival order
  (float addition is not associative — summing in completion order
  would make K-worker output drift from the single-process run);
* every float passes through :func:`repro.runner.cache.stable_floats`.

Together with the workers' canonical point metrics this makes
``merge(shards)`` byte-identical no matter how the key space was
sharded, how many workers ran, or which shards completed first.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from ..runner.cache import stable_floats
from .spec import CAMPAIGN_SCHEMA, CampaignSpec

__all__ = ["shard_document", "merge_shard_documents", "build_document",
           "summarize"]


def shard_document(shard_id: int,
                   results: Iterable[Tuple[str, dict]]) -> dict:
    """One shard's contribution: its id and the points it completed."""
    return {
        "shard": shard_id,
        "points": {name: stable_floats(metrics)
                   for name, metrics in results},
    }


def merge_shard_documents(shards: Iterable[dict]) -> Dict[str, dict]:
    """Fold shard documents into one name->metrics map, order-blind.

    A point reported by two shards must carry identical metrics (points
    are pure functions of their parameters); a mismatch means
    non-deterministic execution and is an error, not a race to resolve
    by arrival order.
    """
    merged: Dict[str, dict] = {}
    for shard in shards:
        for name, metrics in shard["points"].items():
            canonical = stable_floats(metrics)
            if name in merged and merged[name] != canonical:
                raise ValueError(
                    f"conflicting results for campaign point {name!r}: "
                    f"{merged[name]!r} != {canonical!r}"
                )
            merged[name] = canonical
    return {name: merged[name] for name in sorted(merged)}


def _mean(values: List[float]) -> float:
    return sum(values) / len(values) if values else 0.0


def _overhead_summary(points: Dict[str, dict]) -> dict:
    by_engine: Dict[str, List[dict]] = {}
    by_workload: Dict[str, List[dict]] = {}
    for name in sorted(points):
        engine, workload = name.split("/", 2)[:2]
        by_engine.setdefault(engine, []).append(points[name])
        by_workload.setdefault(workload, []).append(points[name])

    def reduce(groups: Dict[str, List[dict]]) -> dict:
        return {
            key: {
                "points": len(group),
                "mean_overhead": _mean([p["overhead"] for p in group]),
                "max_overhead": max(p["overhead"] for p in group),
                "mean_miss_rate": _mean([p["miss_rate"] for p in group]),
            }
            for key, group in sorted(groups.items())
        }

    return {
        "points": len(points),
        "by_engine": reduce(by_engine),
        "by_workload": reduce(by_workload),
    }


def _faults_summary(points: Dict[str, dict]) -> dict:
    verdicts: Dict[str, int] = {}
    conforming = 0
    for name in sorted(points):
        point = points[name]
        verdicts[point["verdict"]] = verdicts.get(point["verdict"], 0) + 1
        conforming += bool(point["conforms"])
    return {
        "points": len(points),
        "conforming": conforming,
        "verdicts": dict(sorted(verdicts.items())),
    }


def summarize(kind: str, points: Dict[str, dict]) -> dict:
    """Aggregate the merged points (reduced in sorted-name order)."""
    summary = (_faults_summary if kind == "faults"
               else _overhead_summary)(points)
    return stable_floats(summary)


def build_document(spec: CampaignSpec, points: Dict[str, dict]) -> dict:
    """The complete campaign metrics document (deterministic bytes)."""
    ordered = {name: stable_floats(points[name]) for name in sorted(points)}
    return {
        "schema": CAMPAIGN_SCHEMA,
        "spec": spec.to_dict(),
        "points": ordered,
        "summary": summarize(spec.kind, ordered),
    }
