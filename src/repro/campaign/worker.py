"""Campaign worker: execute design points, one shard per process.

The worker side of the coordinator/worker split.  :func:`execute_point`
turns one :class:`~repro.campaign.spec.CampaignPoint` into its metrics
dict; :func:`execute_shard` is the ``multiprocessing`` entry point that
walks a whole shard, publishing each completed point into the shared
on-disk :class:`~repro.runner.cache.ResultCache` as it lands (atomic
rename makes concurrent shard writers safe), so an interrupted sweep
loses at most the points in flight.

Per-process memoization: workload traces are built and compiled once per
``(workload, accesses, seed, line_size)`` and reused across every design
point that shares them — the same compile-once discipline
``overhead_grid`` applies within one experiment, extended across a
shard.
"""

from __future__ import annotations

from functools import lru_cache
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from ..runner.cache import ResultCache, stable_floats

__all__ = ["execute_point", "execute_shard"]

#: One shard handed to a worker process: its id, the pending points as
#: ``(name, kind, params, task_key)`` tuples, and the cache directory
#: (``None`` disables publication).
ShardPayload = Tuple[int, List[Tuple[str, str, dict, str]], Optional[str]]


@lru_cache(maxsize=64)
def _compiled_trace(workload: str, accesses: int, seed: int,
                    line_size: int):
    """Build + compile one workload trace, memoized per process."""
    from ..sim.fastpath import compile_trace
    from ..traces import make_workload

    trace = make_workload(workload, n=accesses, seed=seed)
    return compile_trace(trace, line_size)


def _overhead_point(params: Dict[str, object]) -> Dict[str, object]:
    from ..analysis import measure_overhead
    from ..core.registry import make_engine
    from ..sim import CacheConfig, MemoryConfig

    compiled = _compiled_trace(
        str(params["workload"]), int(params["accesses"]),
        int(params["seed"]), int(params["line_size"]),
    )
    result = measure_overhead(
        lambda: make_engine(str(params["engine"]), functional=False),
        compiled,
        workload=str(params["workload"]),
        cache_config=CacheConfig(
            size=int(params["cache_size"]),
            line_size=int(params["line_size"]),
            associativity=int(params["associativity"]),
        ),
        mem_config=MemoryConfig(latency=int(params["latency"])),
    )
    secured, baseline = result.secured, result.baseline
    return {
        "accesses": secured.accesses,
        "cycles": secured.cycles,
        "baseline_cycles": baseline.cycles,
        "overhead": round(result.overhead, 6),
        "miss_rate": round(baseline.miss_rate, 6),
        "cache_hits": secured.cache_hits,
        "cache_misses": secured.cache_misses,
        "bus_transactions": secured.bus_transactions,
        "bus_bytes": secured.bus_bytes,
        "bytes_enciphered": secured.bytes_enciphered,
    }


def _faults_point(params: Dict[str, object]) -> Dict[str, object]:
    from ..faults import run_campaign

    fault = params["fault"]
    result = run_campaign(
        str(params["label"]), None if fault is None else str(fault),
        seed=int(params["seed"]), quick=True,
    )
    return {
        "engine": result.engine_name,
        "fault": result.kind,
        "verdict": result.verdict,
        "conforms": result.conforms,
        "expected_detect": result.expected_detect,
        "injected": result.injected,
        "detected": result.detected,
        "corrupted": result.corrupted,
        "checks": result.checks,
        "tampers": result.tampers,
    }


_POINT_FAMILIES = {
    "overhead": _overhead_point,
    "faults": _faults_point,
}


def execute_point(kind: str, params: Dict[str, object]) -> Dict[str, object]:
    """Run one design point; returns canonical JSON-ready metrics.

    The metrics pass through :func:`stable_floats` *before* they are
    returned or cached, so a freshly-executed point and its cache replay
    are the same bytes — the invariant the deterministic merge relies
    on.
    """
    try:
        family = _POINT_FAMILIES[kind]
    except KeyError:
        raise KeyError(
            f"unknown campaign point kind {kind!r}; "
            f"known: {', '.join(sorted(_POINT_FAMILIES))}"
        ) from None
    return stable_floats(family(params))


def execute_shard(payload: ShardPayload):
    """Process-pool entry point: execute every pending point of a shard.

    Returns ``(shard_id, [(name, metrics), ...])`` in execution order.
    Each point is published to the on-disk cache immediately after it
    completes; the coordinator never re-collects cached points from the
    return value, so a worker killed mid-shard simply leaves its
    completed prefix behind for the next run to resume from.
    """
    shard_id, items, cache_dir = payload
    cache = ResultCache(Path(cache_dir)) if cache_dir else None
    completed = []
    for name, kind, params, key in items:
        metrics = execute_point(kind, params)
        if cache is not None:
            cache.put(key, {"metrics": metrics})
        completed.append((name, metrics))
    return shard_id, completed
