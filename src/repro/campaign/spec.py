"""Declarative design-space campaigns: the parameter grid and its points.

A :class:`CampaignSpec` names a family of simulations (today: engine
``overhead`` sweeps and ``faults`` detection sweeps) and the axes of a
full-factorial grid over it.  :meth:`CampaignSpec.points` expands the
grid into a deterministic, sorted stream of :class:`CampaignPoint`\\ s;
each point carries everything a worker process needs to execute it and a
content-addressed task key (the same ``ResultCache.task_key`` hashing
the experiment runner memoizes with), so identical points always land on
identical cache entries — across runs, shards, and worker counts.

The expansion order is the sorted point-name order.  Everything
downstream (shard membership, merge order, aggregate reduction) derives
from it, which is what makes K-worker campaign output byte-identical to
a single-process run.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, fields
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..runner.cache import ResultCache

__all__ = ["CampaignSpec", "CampaignPoint", "CAMPAIGN_KINDS",
           "CAMPAIGN_SCHEMA"]

#: Document schema for campaign metrics (cache entries fold it into the
#: task key, so bumping it invalidates memoized points wholesale).
CAMPAIGN_SCHEMA = "repro-campaign-metrics/1"

#: Supported point families.
CAMPAIGN_KINDS = ("overhead", "faults")


@dataclass(frozen=True)
class CampaignPoint:
    """One fully-instantiated design point of a campaign grid."""

    name: str                   # stable slug, the sort/merge key
    kind: str                   # "overhead" | "faults"
    params: Dict[str, object]   # JSON-serializable worker parameters

    def task_key(self, schema: str = CAMPAIGN_SCHEMA) -> str:
        """Content-addressed identity of this point's execution.

        Reuses the experiment runner's hashing so campaign entries share
        the on-disk cache format (and its atomic-write concurrency
        story) with experiment tasks while living in a distinct
        ``campaign/<kind>`` namespace.
        """
        return ResultCache.task_key(
            f"campaign/{self.kind}", self.name, dict(self.params),
            schema=schema, quick=False,
        )


def _tuple(values: Sequence) -> Tuple:
    """Normalize an axis to an immutable tuple (JSON lists included)."""
    return tuple(values)


@dataclass(frozen=True)
class CampaignSpec:
    """A full-factorial design-space sweep, declaratively.

    ``overhead`` campaigns sweep engine x workload x trace length x
    cache geometry x memory latency x seed, measuring each point with
    :func:`repro.analysis.measure_overhead` (timing-only, no image).
    ``faults`` campaigns sweep campaign label x fault kind x seed
    through :func:`repro.faults.run_campaign`.

    Axes irrelevant to the selected ``kind`` are ignored by expansion
    but still validated for shape, so one spec document can describe
    both families.
    """

    kind: str = "overhead"
    engines: Tuple[str, ...] = ("stream",)
    workloads: Tuple[str, ...] = ("mixed",)
    accesses: Tuple[int, ...] = (256,)
    cache_sizes: Tuple[int, ...] = (4096,)
    line_sizes: Tuple[int, ...] = (32,)
    associativities: Tuple[int, ...] = (2,)
    latencies: Tuple[int, ...] = (40,)
    seeds: Tuple[int, ...] = (2005,)
    #: Fault classes for ``kind="faults"``; ``None`` is the clean baseline.
    fault_kinds: Tuple[Optional[str], ...] = (None,)
    name: str = "campaign"

    def __post_init__(self):
        # Tolerate lists (JSON specs) by coercing every axis to a tuple.
        for f in fields(self):
            if f.name in ("kind", "name"):
                continue
            object.__setattr__(self, f.name, _tuple(getattr(self, f.name)))
        if self.kind not in CAMPAIGN_KINDS:
            raise ValueError(
                f"unknown campaign kind {self.kind!r}; "
                f"choose from {CAMPAIGN_KINDS}"
            )
        for axis in ("engines", "workloads", "accesses", "cache_sizes",
                     "line_sizes", "associativities", "latencies", "seeds",
                     "fault_kinds"):
            if not getattr(self, axis):
                raise ValueError(f"campaign axis {axis!r} must be non-empty")

    # -- (de)serialization -------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """JSON form (the shape ``--spec file.json`` accepts)."""
        return {
            "name": self.name,
            "kind": self.kind,
            "engines": list(self.engines),
            "workloads": list(self.workloads),
            "accesses": list(self.accesses),
            "cache_sizes": list(self.cache_sizes),
            "line_sizes": list(self.line_sizes),
            "associativities": list(self.associativities),
            "latencies": list(self.latencies),
            "seeds": list(self.seeds),
            "fault_kinds": list(self.fault_kinds),
        }

    @classmethod
    def from_dict(cls, doc: Dict[str, object]) -> "CampaignSpec":
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(doc) - known)
        if unknown:
            raise ValueError(
                f"unknown campaign spec fields: {', '.join(unknown)}; "
                f"known: {', '.join(sorted(known))}"
            )
        return cls(**doc)

    # -- expansion ---------------------------------------------------------

    @property
    def size(self) -> int:
        """Grid cardinality (number of design points)."""
        if self.kind == "faults":
            return (len(self.engines) * len(self.fault_kinds)
                    * len(self.seeds))
        return (len(self.engines) * len(self.workloads) * len(self.accesses)
                * len(self.cache_sizes) * len(self.line_sizes)
                * len(self.associativities) * len(self.latencies)
                * len(self.seeds))

    def _validate_axes(self) -> None:
        from ..core.registry import engine_names
        from ..sim.cache import CacheConfig
        from ..traces.workloads import WORKLOAD_NAMES

        if self.kind == "faults":
            from ..faults import FAULT_KINDS, campaign_labels

            labels = campaign_labels()
            for label in self.engines:
                if label not in labels:
                    raise KeyError(
                        f"unknown campaign label {label!r}; "
                        f"known: {', '.join(labels)}"
                    )
            for fault in self.fault_kinds:
                if fault is not None and fault not in FAULT_KINDS:
                    raise KeyError(
                        f"unknown fault kind {fault!r}; "
                        f"known: {', '.join(FAULT_KINDS)} (or null)"
                    )
            return

        known_engines = engine_names()
        for engine in self.engines:
            if engine not in known_engines:
                raise KeyError(
                    f"unknown engine {engine!r}; "
                    f"known: {', '.join(known_engines)}"
                )
        for workload in self.workloads:
            if workload not in WORKLOAD_NAMES:
                raise KeyError(
                    f"unknown workload {workload!r}; "
                    f"known: {', '.join(WORKLOAD_NAMES)}"
                )
        for size, line, assoc in itertools.product(
                self.cache_sizes, self.line_sizes, self.associativities):
            # CacheConfig raises on impossible geometry; surface the
            # offending combination instead of failing mid-sweep.
            try:
                CacheConfig(size=size, line_size=line, associativity=assoc)
            except ValueError as exc:
                raise ValueError(
                    f"invalid cache geometry {size}x{line}x{assoc} "
                    f"in campaign grid: {exc}"
                ) from exc

    def validate(self) -> None:
        """Check every axis value against the registries without expanding.

        Cheap relative to :meth:`points` on large grids (axes are
        validated per value, not per combination), so request-facing
        callers — the serve layer, the CLI — can reject a bad spec with
        a typed error before committing workers to it.
        """
        self._validate_axes()

    def points(self) -> List[CampaignPoint]:
        """Expand the grid, sorted by point name (the canonical order)."""
        self._validate_axes()
        return sorted(self._expand(), key=lambda p: p.name)

    def _expand(self) -> Iterator[CampaignPoint]:
        if self.kind == "faults":
            for label, fault, seed in itertools.product(
                    self.engines, self.fault_kinds, self.seeds):
                yield CampaignPoint(
                    name=f"{label}/{fault or 'baseline'}/s{seed}",
                    kind="faults",
                    params={"label": label, "fault": fault, "seed": seed},
                )
            return
        for (engine, workload, n, size, line, assoc, latency,
             seed) in itertools.product(
                self.engines, self.workloads, self.accesses,
                self.cache_sizes, self.line_sizes, self.associativities,
                self.latencies, self.seeds):
            yield CampaignPoint(
                name=(f"{engine}/{workload}/n{n}/c{size}x{line}x{assoc}"
                      f"/l{latency}/s{seed}"),
                kind="overhead",
                params={
                    "engine": engine, "workload": workload, "accesses": n,
                    "cache_size": size, "line_size": line,
                    "associativity": assoc, "latency": latency, "seed": seed,
                },
            )
