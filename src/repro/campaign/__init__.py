"""Distributed design-space campaigns: shardable, resumable sweeps.

The survey's experiments fix ~19 design points; this package sweeps the
open design space (engine x workload x cache geometry x latency x seed,
or engine x fault plan) as a shardable stream of content-addressed
tasks:

* :class:`CampaignSpec` declares the grid and expands it into
  deterministic :class:`CampaignPoint`\\ s (``spec.py``);
* :class:`CampaignCoordinator` stride-partitions the key space into
  shards, hands them to a process pool, and resumes interrupted sweeps
  from the on-disk result cache (``coordinator.py``, ``worker.py``);
* :mod:`repro.campaign.merge` reduces shard output with sorted keys and
  stable floats, so K-worker metrics are byte-identical to one worker's.

Entry points: :func:`repro.api.run_campaign` and ``python -m repro.cli
campaign``; ``python -m repro.campaign.bench`` measures scaling.
"""

from .coordinator import CampaignCoordinator, CampaignResult
from .merge import build_document, merge_shard_documents, shard_document
from .spec import CAMPAIGN_KINDS, CAMPAIGN_SCHEMA, CampaignPoint, CampaignSpec
from .worker import execute_point

__all__ = [
    "CAMPAIGN_KINDS",
    "CAMPAIGN_SCHEMA",
    "CampaignCoordinator",
    "CampaignPoint",
    "CampaignResult",
    "CampaignSpec",
    "build_document",
    "execute_point",
    "merge_shard_documents",
    "shard_document",
]
