"""Campaign scaling benchmark: tasks/sec at several worker counts.

Runs one design-space grid through the coordinator at each requested
worker count (fresh cache per run, so every point actually executes),
verifies the metrics documents are byte-identical across counts, and
writes a summary JSON (``BENCH_campaign_scaling.json``)::

    python -m repro.campaign.bench                  # >=1k-point grid, 1/2/4
    python -m repro.campaign.bench --smoke          # tiny grid, 1 vs 2

``--smoke`` is the CI determinism gate (``make campaign-smoke``): a
small sharded grid whose 2-worker output must match the 1-worker
reference byte-for-byte, exiting non-zero on any divergence.
"""

from __future__ import annotations

import argparse
import hashlib
import shutil
import sys
import tempfile
from pathlib import Path
from typing import List, Optional

from ..runner.runner import to_canonical_json
from .coordinator import CampaignCoordinator
from .spec import CampaignSpec

__all__ = ["scaling_grid", "smoke_grid", "run_scaling"]


def scaling_grid() -> CampaignSpec:
    """The committed-bench grid: 1296 points over the survey engines."""
    return CampaignSpec(
        name="scaling",
        kind="overhead",
        engines=("aegis", "best", "ds5002fp", "ds5240", "gi", "gilmont",
                 "stream", "vlsi", "xom"),
        workloads=("sequential", "branchy", "data-local", "data-random",
                   "write-heavy", "mixed"),
        accesses=(256,),
        cache_sizes=(1024, 4096),
        line_sizes=(16, 32),
        associativities=(1, 2),
        latencies=(20, 40, 80),
        seeds=(2005,),
    )


def smoke_grid() -> CampaignSpec:
    """A seconds-scale grid for the CI determinism gate (16 points)."""
    return CampaignSpec(
        name="smoke",
        kind="overhead",
        engines=("stream", "xom"),
        workloads=("mixed", "sequential"),
        accesses=(256,),
        cache_sizes=(1024, 4096),
        latencies=(20, 40),
    )


def run_scaling(spec: CampaignSpec, worker_counts: List[int],
                out: Optional[Path]) -> int:
    """Run the grid per worker count; write the scaling summary."""
    runs = []
    reference_json: Optional[str] = None
    digest = ""
    scratch = Path(tempfile.mkdtemp(prefix="campaign-bench-"))
    try:
        for workers in worker_counts:
            coordinator = CampaignCoordinator(
                spec, workers=workers, shards=max(workers, 1),
                cache_dir=scratch / f"cache-w{workers}",
            )
            result = coordinator.run()
            metrics_json = result.metrics_json()
            digest = hashlib.sha256(metrics_json.encode()).hexdigest()
            if reference_json is None:
                reference_json = metrics_json
            elif metrics_json != reference_json:
                print(f"campaign-bench: FAIL — {workers}-worker metrics "
                      f"differ from the {worker_counts[0]}-worker "
                      f"reference", file=sys.stderr)
                return 1
            runs.append({
                "workers": workers,
                "shards": coordinator.shards,
                "points": result.profile["points"],
                "executed": result.executed,
                "wall_seconds": result.profile["wall_seconds"],
                "tasks_per_second": result.tasks_per_second,
            })
            print(f"campaign-bench: {workers} worker(s): "
                  f"{result.profile['points']} points in "
                  f"{result.profile['wall_seconds']}s "
                  f"({result.tasks_per_second} tasks/s)")
    finally:
        shutil.rmtree(scratch, ignore_errors=True)

    print(f"campaign-bench: metrics byte-identical across workers "
          f"{worker_counts} (sha256 {digest[:16]})")
    if out is not None:
        document = {
            "schema": "repro-campaign-scaling/1",
            "grid": spec.to_dict(),
            "grid_points": spec.size,
            "metrics_sha256": digest,
            "byte_identical": True,
            "runs": runs,
        }
        out.write_text(to_canonical_json(document), encoding="utf-8")
        print(f"campaign-bench: summary -> {out}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.campaign.bench",
        description="Campaign coordinator scaling benchmark.",
    )
    parser.add_argument("--workers", type=int, nargs="*",
                        help="worker counts to sweep (default: 1 2 4; "
                             "smoke default: 1 2)")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny grid, no summary file unless --out is "
                             "given (the CI determinism gate)")
    parser.add_argument("--out", metavar="PATH",
                        help="scaling summary JSON path (default: "
                             "BENCH_campaign_scaling.json; smoke: none)")
    args = parser.parse_args(argv)

    if args.smoke:
        spec, counts = smoke_grid(), args.workers or [1, 2]
        out = Path(args.out) if args.out else None
    else:
        spec, counts = scaling_grid(), args.workers or [1, 2, 4]
        out = Path(args.out) if args.out else Path(
            "BENCH_campaign_scaling.json")
    if any(w < 1 for w in counts):
        parser.error("worker counts must be >= 1")
    print(f"campaign-bench: grid '{spec.name}' — {spec.size} points, "
          f"workers {counts}")
    return run_scaling(spec, counts, out)


if __name__ == "__main__":
    raise SystemExit(main())
