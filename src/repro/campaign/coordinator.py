"""Campaign coordinator: shard the key space, farm it out, merge, resume.

The DES-cracker sharding model applied to design-space sweeps: the
expanded grid is a solution space, and shard ``i`` of ``K`` takes the
points at indices ``i, i+K, i+2K, ...`` (offset striding).  Membership
depends only on the grid and the shard count — never on cache state or
scheduling — so a re-run after an interrupt partitions identically and
each shard finds its own completed prefix already in the cache.

Execution is resume-first: before anything runs, every point's
content-addressed key is probed against the on-disk
:class:`~repro.runner.cache.ResultCache`; only the misses are handed to
workers (in-process for ``workers=1`` — the reference path — or a
fork pool otherwise), and each completes to disk point-by-point.  Kill
the coordinator mid-sweep and rerun: completed points replay as cache
hits and only the remainder executes.

Results from any mix of cache replay and live execution meet in
:mod:`repro.campaign.merge`, whose sorted-key reduction makes the final
document byte-identical for any worker count, shard count, or
completion order.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional

from ..runner.cache import ResultCache
from ..runner.runner import fork_pool, to_canonical_json
from .merge import build_document, merge_shard_documents, shard_document
from .spec import CAMPAIGN_SCHEMA, CampaignSpec
from .worker import execute_point, execute_shard

__all__ = ["CampaignCoordinator", "CampaignResult"]


@dataclass(frozen=True)
class CampaignResult:
    """Everything one campaign run produced.

    ``metrics`` is the deterministic document (commit-safe bytes via
    :meth:`metrics_json`); ``profile`` is the non-deterministic side —
    wall time, throughput, per-shard cache accounting.
    """

    spec: CampaignSpec
    metrics: dict
    profile: dict

    @property
    def points(self) -> Dict[str, dict]:
        return self.metrics["points"]

    @property
    def summary(self) -> dict:
        return self.metrics["summary"]

    @property
    def executed(self) -> int:
        return self.profile["executed"]

    @property
    def cached(self) -> int:
        return self.profile["cache"]["hits"]

    @property
    def tasks_per_second(self) -> float:
        return self.profile["tasks_per_second"]

    def metrics_json(self) -> str:
        return to_canonical_json(self.metrics)


class CampaignCoordinator:
    """Run one :class:`CampaignSpec` over a sharded worker pool.

    Parameters
    ----------
    spec:
        The design-space grid to sweep.
    workers:
        Process count; 1 executes in-process (the reference path — any
        other count must produce byte-identical metrics).
    shards:
        Key-space partitions (default: ``workers``).  More shards than
        workers is fine — the pool load-balances whole shards.
    cache_dir:
        On-disk result cache shared by every worker; ``None`` disables
        caching (and with it resume).
    progress:
        Optional callable receiving one line per completed point.
    """

    def __init__(
        self,
        spec: CampaignSpec,
        workers: int = 1,
        shards: Optional[int] = None,
        cache_dir: Optional[Path] = Path(".bench_campaign_cache"),
        progress: Optional[Callable[[str], None]] = None,
    ):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.spec = spec
        self.workers = workers
        self.shards = shards if shards is not None else workers
        if self.shards < 1:
            raise ValueError(f"shards must be >= 1, got {self.shards}")
        self.cache = ResultCache(Path(cache_dir)) if cache_dir else None
        self._progress = progress or (lambda line: None)

    # -- sharding ----------------------------------------------------------

    def shard_of(self, index: int) -> int:
        """Offset-striding shard membership for grid index ``index``."""
        return index % self.shards

    def plan(self):
        """Expand the grid and probe the cache.

        Returns ``(results, shard_items, shard_stats)``: the cache-hit
        metrics by point name, the pending work per shard (as the tuples
        :func:`repro.campaign.worker.execute_shard` expects), and the
        per-shard hit/miss accounting.
        """
        points = self.spec.points()
        results: Dict[str, dict] = {}
        shard_items: Dict[int, List] = {s: [] for s in range(self.shards)}
        shard_stats = {
            s: {"hits": 0, "misses": 0} for s in range(self.shards)
        }
        for index, point in enumerate(points):
            shard = self.shard_of(index)
            key = point.task_key(CAMPAIGN_SCHEMA)
            cached = self.cache.get(key) if self.cache is not None else None
            if cached is not None and "metrics" in cached:
                shard_stats[shard]["hits"] += 1
                results[point.name] = cached["metrics"]
                self._progress(f"{point.name}  [cached]")
            else:
                shard_stats[shard]["misses"] += 1
                shard_items[shard].append(
                    (point.name, point.kind, dict(point.params), key)
                )
        return results, shard_items, shard_stats

    # -- execution ---------------------------------------------------------

    def run(self) -> CampaignResult:
        start = time.perf_counter()
        results, shard_items, shard_stats = self.plan()
        pending = {s: items for s, items in shard_items.items() if items}
        executed = 0

        for shard_id, completed in self._execute(pending):
            for name, metrics in completed:
                results[name] = metrics
                executed += 1
            self._progress(
                f"shard {shard_id}: {len(completed)} points done"
            )

        wall = time.perf_counter() - start
        metrics = build_document(
            self.spec,
            merge_shard_documents([shard_document(0, results.items())]),
        )
        total = len(results)
        profile = {
            "workers": self.workers,
            "shards": self.shards,
            "points": total,
            "executed": executed,
            "wall_seconds": round(wall, 3),
            "tasks_per_second": round(total / wall, 2) if wall else 0.0,
            "cache": {
                "hits": self.cache.hits if self.cache else 0,
                "misses": self.cache.misses if self.cache else 0,
                "dir": str(self.cache.root) if self.cache else None,
                "per_shard": {
                    str(shard): dict(stats)
                    for shard, stats in sorted(shard_stats.items())
                },
            },
        }
        return CampaignResult(spec=self.spec, metrics=metrics,
                              profile=profile)

    def _execute(self, pending: Dict[int, List]):
        """Yield ``(shard_id, [(name, metrics), ...])`` per shard."""
        if not pending:
            return
        cache_dir = str(self.cache.root) if self.cache is not None else None
        if self.workers == 1:
            # In-process reference path: same per-point publish cadence
            # as the pool workers, so interrupts lose at most one point.
            for shard_id in sorted(pending):
                completed = []
                for name, kind, params, key in pending[shard_id]:
                    metrics = execute_point(kind, params)
                    if self.cache is not None:
                        self.cache.put(key, {"metrics": metrics})
                    completed.append((name, metrics))
                    self._progress(f"{name}  [done]")
                yield shard_id, completed
            return
        payloads = [
            (shard_id, pending[shard_id], cache_dir)
            for shard_id in sorted(pending)
        ]
        with fork_pool(self.workers) as pool:
            for item in pool.imap_unordered(execute_shard, payloads,
                                            chunksize=1):
                yield item
