"""CodePack-style code compression (IBM [16] in the survey).

IBM's CodePack compresses PowerPC code by splitting each 32-bit instruction
into two 16-bit halves and encoding each half against dictionaries of the
most frequent values, with an escape for misses.  Compression happens at a
fixed block granularity and a *line address table* (LAT) maps each block to
its compressed offset, so the memory controller can fetch and decompress any
block independently — exactly what random access on a processor bus needs.

The survey reports "+/- 10%" performance impact and "an increase of memory
density of 35%"; experiment E13 regenerates both numbers' shape with this
implementation feeding the compression+encryption engine of Figure 8.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

__all__ = ["CodePack", "CompressedImage"]


class _BitWriter:
    def __init__(self) -> None:
        self.bits: List[int] = []

    def write(self, value: int, width: int) -> None:
        for i in range(width - 1, -1, -1):
            self.bits.append((value >> i) & 1)

    def to_bytes(self) -> bytes:
        out = bytearray()
        for i in range(0, len(self.bits), 8):
            chunk = self.bits[i: i + 8]
            byte = 0
            for b in chunk:
                byte = (byte << 1) | b
            byte <<= 8 - len(chunk)
            out.append(byte)
        return bytes(out)


class _BitReader:
    def __init__(self, data: bytes):
        self.data = data
        self.pos = 0

    def read(self, width: int) -> int:
        value = 0
        for _ in range(width):
            byte = self.data[self.pos // 8]
            value = (value << 1) | ((byte >> (7 - self.pos % 8)) & 1)
            self.pos += 1
        return value


@dataclass
class CompressedImage:
    """A compressed code image with per-block random access.

    ``blocks[i]`` holds the compressed bytes of original block ``i``;
    ``lat`` (line address table) gives each block's byte offset in the
    packed stream, mirroring the indirection table CodePack keeps in memory.
    """

    block_size: int
    original_size: int
    blocks: List[bytes]
    dict_high: List[int]
    dict_low: List[int]
    lat: List[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.lat:
            offset = 0
            for block in self.blocks:
                self.lat.append(offset)
                offset += len(block)

    @property
    def compressed_size(self) -> int:
        """Payload plus LAT plus dictionaries — the honest footprint."""
        payload = sum(len(b) for b in self.blocks)
        lat_bytes = 4 * len(self.lat)
        dict_bytes = 2 * (len(self.dict_high) + len(self.dict_low))
        return payload + lat_bytes + dict_bytes

    @property
    def ratio(self) -> float:
        """compressed/original size ratio (< 1 means the image shrank)."""
        if self.original_size == 0:
            return 1.0
        return self.compressed_size / self.original_size

    @property
    def density_gain(self) -> float:
        """Fractional memory-density increase, the survey's 35% metric.

        An image compressed to ratio r stores 1/r as much code in the same
        memory, i.e. a density gain of 1/r - 1.
        """
        r = self.ratio
        if r <= 0:
            return 0.0
        return 1.0 / r - 1.0


class CodePack:
    """Dictionary compressor for instruction streams.

    Parameters
    ----------
    block_size:
        Compression granularity in bytes (normally the cache-line size, so
        one decompression serves one line fill).  Must be a multiple of 4.
    index_bits:
        log2 of the dictionary size; CodePack-like designs use small
        dictionaries that fit in on-chip SRAM.
    """

    def __init__(self, block_size: int = 64, index_bits: int = 8):
        if block_size % 4 != 0 or block_size <= 0:
            raise ValueError(
                f"block_size must be a positive multiple of 4, got {block_size}"
            )
        if not 1 <= index_bits <= 16:
            raise ValueError(f"index_bits must be in [1, 16], got {index_bits}")
        self.block_size = block_size
        self.index_bits = index_bits
        self.dict_entries = 1 << index_bits

    # -- dictionary construction ----------------------------------------

    def _build_dictionaries(self, image: bytes) -> Tuple[List[int], List[int]]:
        highs: Counter = Counter()
        lows: Counter = Counter()
        for i in range(0, len(image) - 3, 4):
            word = int.from_bytes(image[i: i + 4], "big")
            highs[word >> 16] += 1
            lows[word & 0xFFFF] += 1
        dict_high = [hw for hw, _ in highs.most_common(self.dict_entries)]
        dict_low = [lw for lw, _ in lows.most_common(self.dict_entries)]
        return dict_high, dict_low

    # -- per-block codec -------------------------------------------------

    def _encode_half(
        self, writer: _BitWriter, half: int, index: Dict[int, int]
    ) -> None:
        idx = index.get(half)
        if idx is not None:
            writer.write(1, 1)
            writer.write(idx, self.index_bits)
        else:
            writer.write(0, 1)
            writer.write(half, 16)

    def _decode_half(self, reader: _BitReader, table: List[int]) -> int:
        if reader.read(1):
            return table[reader.read(self.index_bits)]
        return reader.read(16)

    def compress_block(
        self, block: bytes, high_index: Dict[int, int], low_index: Dict[int, int]
    ) -> bytes:
        """Compress one block against prebuilt dictionary indexes."""
        if len(block) % 4 != 0:
            raise ValueError(f"block length must be a multiple of 4, got {len(block)}")
        writer = _BitWriter()
        for i in range(0, len(block), 4):
            word = int.from_bytes(block[i: i + 4], "big")
            self._encode_half(writer, word >> 16, high_index)
            self._encode_half(writer, word & 0xFFFF, low_index)
        return writer.to_bytes()

    def decompress_block(
        self,
        data: bytes,
        nbytes: int,
        dict_high: List[int],
        dict_low: List[int],
    ) -> bytes:
        """Decompress one block back to ``nbytes`` of code."""
        if nbytes % 4 != 0:
            raise ValueError(f"nbytes must be a multiple of 4, got {nbytes}")
        reader = _BitReader(data)
        out = bytearray()
        for _ in range(nbytes // 4):
            high = self._decode_half(reader, dict_high)
            low = self._decode_half(reader, dict_low)
            out += ((high << 16) | low).to_bytes(4, "big")
        return bytes(out)

    # -- whole-image interface --------------------------------------------

    def compress_image(self, image: bytes) -> CompressedImage:
        """Compress an entire code image block by block."""
        if len(image) % 4 != 0:
            image = image + b"\x00" * (4 - len(image) % 4)
        dict_high, dict_low = self._build_dictionaries(image)
        high_index = {hw: i for i, hw in enumerate(dict_high)}
        low_index = {lw: i for i, lw in enumerate(dict_low)}
        blocks = []
        for start in range(0, len(image), self.block_size):
            chunk = image[start: start + self.block_size]
            if len(chunk) % 4 != 0:
                chunk = chunk + b"\x00" * (4 - len(chunk) % 4)
            blocks.append(self.compress_block(chunk, high_index, low_index))
        return CompressedImage(
            block_size=self.block_size,
            original_size=len(image),
            blocks=blocks,
            dict_high=dict_high,
            dict_low=dict_low,
        )

    def decompress_image(self, compressed: CompressedImage) -> bytes:
        """Decompress every block and trim to the original size."""
        out = bytearray()
        remaining = compressed.original_size
        for block in compressed.blocks:
            nbytes = min(self.block_size, remaining)
            padded = nbytes + (4 - nbytes % 4) % 4
            out += self.decompress_block(
                block, padded, compressed.dict_high, compressed.dict_low
            )[:nbytes]
            remaining -= nbytes
        return bytes(out)

    def fetch_block(self, compressed: CompressedImage, block_idx: int) -> bytes:
        """Random-access decompression of block ``block_idx`` via the LAT."""
        if not 0 <= block_idx < len(compressed.blocks):
            raise IndexError(f"block {block_idx} out of range")
        start = block_idx * self.block_size
        nbytes = min(self.block_size, compressed.original_size - start)
        padded = nbytes + (4 - nbytes % 4) % 4
        return self.decompress_block(
            compressed.blocks[block_idx],
            padded,
            compressed.dict_high,
            compressed.dict_low,
        )[:nbytes]
