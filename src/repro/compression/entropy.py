"""Entropy and redundancy estimators.

Section 4 of the survey argues that compression must precede encryption
("compression will have a very poor ratio due to the strong stochastic
properties of encrypted data") and that it "increases the message entropy".
These estimators quantify both statements in E13 and feed the security
distinguishers in :mod:`repro.analysis.security`.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Dict

__all__ = [
    "byte_histogram",
    "shannon_entropy",
    "redundancy",
    "block_collision_rate",
    "chi_square_uniform",
]


def byte_histogram(data: bytes) -> Dict[int, int]:
    """Count occurrences of each byte value."""
    return dict(Counter(data))


def shannon_entropy(data: bytes) -> float:
    """Shannon entropy of the byte distribution, in bits per byte (0-8)."""
    if not data:
        return 0.0
    total = len(data)
    entropy = 0.0
    for count in Counter(data).values():
        p = count / total
        entropy -= p * math.log2(p)
    return entropy


def redundancy(data: bytes) -> float:
    """Fraction of the maximum 8 bits/byte not used by the distribution."""
    return 1.0 - shannon_entropy(data) / 8.0


def block_collision_rate(data: bytes, block_size: int) -> float:
    """Fraction of blocks that are duplicates of an earlier block.

    The ECB leak metric: for structured plaintext under ECB this stays close
    to the plaintext's own block-repetition rate; for CBC/CTR ciphertext it
    drops to (essentially) zero.
    """
    if block_size <= 0:
        raise ValueError(f"block_size must be positive, got {block_size}")
    blocks = [
        bytes(data[i: i + block_size])
        for i in range(0, len(data) - block_size + 1, block_size)
    ]
    if not blocks:
        return 0.0
    return 1.0 - len(set(blocks)) / len(blocks)


def chi_square_uniform(data: bytes) -> float:
    """Chi-square statistic of the byte histogram against uniformity.

    For uniform random bytes the expected value is about 255 (the degrees of
    freedom); structured data scores orders of magnitude higher.
    """
    if not data:
        return 0.0
    expected = len(data) / 256
    stat = 0.0
    hist = Counter(data)
    for value in range(256):
        observed = hist.get(value, 0)
        stat += (observed - expected) ** 2 / expected
    return stat
