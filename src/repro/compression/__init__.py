"""Compression substrate: CodePack-style code compression, Huffman, LZ77,
RLE and entropy estimators (survey Figure 8 / experiment E13)."""

from .codepack import CodePack, CompressedImage
from .entropy import (
    block_collision_rate,
    byte_histogram,
    chi_square_uniform,
    redundancy,
    shannon_entropy,
)
from .huffman import huffman_compress, huffman_decompress
from .lz77 import lz77_compress, lz77_decompress
from .rle import rle_compress, rle_decompress

__all__ = [
    "CodePack", "CompressedImage",
    "block_collision_rate", "byte_histogram", "chi_square_uniform",
    "redundancy", "shannon_entropy",
    "huffman_compress", "huffman_decompress",
    "lz77_compress", "lz77_decompress",
    "rle_compress", "rle_decompress",
]
