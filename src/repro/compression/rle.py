"""Run-length encoding.

The simplest compressor in the suite; useful as a latency-free baseline in
the compression+encryption engine ablation (E13) and for zero-heavy data
segments (BSS-like regions compress extremely well under RLE).
"""

from __future__ import annotations

__all__ = ["rle_compress", "rle_decompress"]

_MAX_RUN = 255


def rle_compress(data: bytes) -> bytes:
    """Encode as (count, byte) pairs behind a 4-byte original-size header."""
    out = bytearray()
    out += len(data).to_bytes(4, "big")
    i = 0
    n = len(data)
    while i < n:
        byte = data[i]
        run = 1
        while i + run < n and run < _MAX_RUN and data[i + run] == byte:
            run += 1
        out.append(run)
        out.append(byte)
        i += run
    return bytes(out)


def rle_decompress(blob: bytes) -> bytes:
    """Invert :func:`rle_compress`."""
    if len(blob) < 4:
        raise ValueError("truncated rle blob")
    size = int.from_bytes(blob[0:4], "big")
    if (len(blob) - 4) % 2 != 0:
        raise ValueError("corrupt rle stream: odd payload length")
    out = bytearray()
    for i in range(4, len(blob), 2):
        run, byte = blob[i], blob[i + 1]
        if run == 0:
            raise ValueError("corrupt rle stream: zero-length run")
        out += bytes([byte]) * run
    if len(out) != size:
        raise ValueError(
            f"corrupt rle stream: expected {size} bytes, decoded {len(out)}"
        )
    return bytes(out)
