"""LZ77 sliding-window compression.

Byte-oriented LZ77 with a hash-chained match finder.  Token format:

* literal:   0x00 length(1) bytes...
* match:     0x01 distance(2, big endian) length(1)

Used by the generic compression+encryption engine (Figure 8) as an
alternative back end to the CodePack-style compressor, and to demonstrate
that ciphertext does not compress (E13).
"""

from __future__ import annotations

from typing import List

__all__ = ["lz77_compress", "lz77_decompress"]

_MIN_MATCH = 4
_MAX_MATCH = 255
_WINDOW = 0xFFFF
_MAX_LITERAL_RUN = 255


def lz77_compress(data: bytes) -> bytes:
    """Compress ``data`` with a 64 KiB window."""
    n = len(data)
    out = bytearray()
    out += n.to_bytes(4, "big")
    # Hash chains on 4-byte prefixes.
    heads: dict = {}
    prev: List[int] = [0] * n
    literals = bytearray()

    def flush_literals() -> None:
        start = 0
        while start < len(literals):
            chunk = literals[start: start + _MAX_LITERAL_RUN]
            out.append(0x00)
            out.append(len(chunk))
            out.extend(chunk)
            start += len(chunk)
        literals.clear()

    i = 0
    while i < n:
        best_len = 0
        best_dist = 0
        if i + _MIN_MATCH <= n:
            key = bytes(data[i: i + _MIN_MATCH])
            candidate = heads.get(key, -1)
            tries = 16
            while candidate >= 0 and tries > 0 and i - candidate <= _WINDOW:
                length = 0
                max_len = min(_MAX_MATCH, n - i)
                while length < max_len and data[candidate + length] == data[i + length]:
                    length += 1
                if length > best_len:
                    best_len = length
                    best_dist = i - candidate
                candidate = prev[candidate] if prev[candidate] != candidate else -1
                tries -= 1
        if best_len >= _MIN_MATCH:
            flush_literals()
            out.append(0x01)
            out += best_dist.to_bytes(2, "big")
            out.append(best_len)
            end = i + best_len
            while i < end:
                if i + _MIN_MATCH <= n:
                    key = bytes(data[i: i + _MIN_MATCH])
                    prev[i] = heads.get(key, i)
                    heads[key] = i
                i += 1
        else:
            literals.append(data[i])
            if i + _MIN_MATCH <= n:
                key = bytes(data[i: i + _MIN_MATCH])
                prev[i] = heads.get(key, i)
                heads[key] = i
            i += 1
    flush_literals()
    return bytes(out)


def lz77_decompress(blob: bytes) -> bytes:
    """Invert :func:`lz77_compress`."""
    if len(blob) < 4:
        raise ValueError("truncated lz77 blob")
    size = int.from_bytes(blob[0:4], "big")
    out = bytearray()
    i = 4
    while len(out) < size:
        if i >= len(blob):
            raise ValueError("corrupt lz77 stream: ran out of tokens")
        tag = blob[i]
        i += 1
        if tag == 0x00:
            run = blob[i]
            i += 1
            out += blob[i: i + run]
            i += run
        elif tag == 0x01:
            dist = int.from_bytes(blob[i: i + 2], "big")
            length = blob[i + 2]
            i += 3
            if dist == 0 or dist > len(out):
                raise ValueError(f"corrupt lz77 stream: bad distance {dist}")
            start = len(out) - dist
            for k in range(length):
                out.append(out[start + k])
        else:
            raise ValueError(f"corrupt lz77 stream: unknown tag {tag:#x}")
    return bytes(out[:size])
