"""Canonical Huffman coding over bytes.

General-purpose entropy coder used standalone and as the back end of the
CodePack-style code compressor.  The encoded stream is self-describing: a
canonical code-length table precedes the payload, so ``decompress`` needs no
out-of-band state.
"""

from __future__ import annotations

import heapq
from collections import Counter
from typing import Dict, List, Tuple

__all__ = ["huffman_compress", "huffman_decompress", "build_code_lengths",
           "canonical_codes"]

_MAX_CODE_LEN = 255


def build_code_lengths(data: bytes) -> Dict[int, int]:
    """Compute Huffman code lengths for each byte present in ``data``."""
    freq = Counter(data)
    if not freq:
        return {}
    if len(freq) == 1:
        symbol = next(iter(freq))
        return {symbol: 1}
    # Heap of (weight, tiebreak, symbols-with-depths)
    heap: List[Tuple[int, int, List[Tuple[int, int]]]] = []
    for tiebreak, (symbol, weight) in enumerate(sorted(freq.items())):
        heap.append((weight, tiebreak, [(symbol, 0)]))
    heapq.heapify(heap)
    counter = len(heap)
    while len(heap) > 1:
        w1, _, s1 = heapq.heappop(heap)
        w2, _, s2 = heapq.heappop(heap)
        merged = [(sym, d + 1) for sym, d in s1 + s2]
        heapq.heappush(heap, (w1 + w2, counter, merged))
        counter += 1
    return {symbol: depth for symbol, depth in heap[0][2]}


def canonical_codes(lengths: Dict[int, int]) -> Dict[int, Tuple[int, int]]:
    """Assign canonical codes: returns symbol -> (code, length)."""
    ordered = sorted(lengths.items(), key=lambda kv: (kv[1], kv[0]))
    codes: Dict[int, Tuple[int, int]] = {}
    code = 0
    prev_len = 0
    for symbol, length in ordered:
        code <<= length - prev_len
        codes[symbol] = (code, length)
        code += 1
        prev_len = length
    return codes


class _BitWriter:
    def __init__(self) -> None:
        self._bits: List[int] = []

    def write(self, code: int, length: int) -> None:
        for i in range(length - 1, -1, -1):
            self._bits.append((code >> i) & 1)

    def getvalue(self) -> Tuple[bytes, int]:
        """Return (payload, bit_count)."""
        out = bytearray()
        for i in range(0, len(self._bits), 8):
            byte = 0
            chunk = self._bits[i: i + 8]
            for b in chunk:
                byte = (byte << 1) | b
            byte <<= 8 - len(chunk)
            out.append(byte)
        return bytes(out), len(self._bits)


class _BitReader:
    def __init__(self, data: bytes, bit_count: int):
        self._data = data
        self._bit_count = bit_count
        self._pos = 0

    def read_bit(self) -> int:
        if self._pos >= self._bit_count:
            raise ValueError("bit stream exhausted")
        byte = self._data[self._pos // 8]
        bit = (byte >> (7 - self._pos % 8)) & 1
        self._pos += 1
        return bit


def huffman_compress(data: bytes) -> bytes:
    """Compress ``data``; header = 256 code lengths + original size + bits."""
    lengths = build_code_lengths(data)
    codes = canonical_codes(lengths)
    writer = _BitWriter()
    for byte in data:
        code, length = codes[byte]
        writer.write(code, length)
    payload, bit_count = writer.getvalue()
    header = bytearray()
    header += len(data).to_bytes(4, "big")
    header += bit_count.to_bytes(4, "big")
    for symbol in range(256):
        header.append(lengths.get(symbol, 0))
    return bytes(header) + payload


def huffman_decompress(blob: bytes) -> bytes:
    """Invert :func:`huffman_compress`."""
    if len(blob) < 264:
        raise ValueError("truncated huffman blob")
    size = int.from_bytes(blob[0:4], "big")
    bit_count = int.from_bytes(blob[4:8], "big")
    lengths = {s: blob[8 + s] for s in range(256) if blob[8 + s] != 0}
    payload = blob[264:]
    if size == 0:
        return b""
    codes = canonical_codes(lengths)
    # Decoding table: (length, code) -> symbol
    decode = {(length, code): sym for sym, (code, length) in codes.items()}
    reader = _BitReader(payload, bit_count)
    out = bytearray()
    code = 0
    length = 0
    while len(out) < size:
        code = (code << 1) | reader.read_bit()
        length += 1
        if length > _MAX_CODE_LEN:
            raise ValueError("corrupt huffman stream: code too long")
        sym = decode.get((length, code))
        if sym is not None:
            out.append(sym)
            code = 0
            length = 0
    return bytes(out)
