"""Quickstart: protect a program image with a bus-encryption engine.

Builds a simulated SoC (CPU + cache + bus + external RAM) with an
AEGIS-style per-cache-line AES-CBC engine, installs a program, runs a
workload, and shows what an attacker probing the bus actually sees.

Engines come from the registry facade (``repro.api.make_engine``); see
``python -m repro.cli list`` for the available names.

Run:  python examples/quickstart.py
"""

from repro.analysis import format_percent, format_table
from repro.api import make_engine
from repro.attacks import BusProbe, analyze_ciphertext
from repro.sim import CacheConfig, MemoryConfig, SecureSystem, run_trace
from repro.traces import make_workload, synthetic_code_image


def main() -> None:
    key = b"0123456789abcdef"            # stays on-chip, Best's rule
    image = synthetic_code_image(size=64 * 1024)
    trace = make_workload("mixed", n=5000)

    # A system with the engine, and the plaintext baseline to compare.
    system = SecureSystem(
        engine=make_engine("aegis", key=key),
        cache_config=CacheConfig(size=4096, line_size=32, associativity=2),
        mem_config=MemoryConfig(size=1 << 21, latency=40),
    )
    probe = BusProbe()                    # the attacker's logic analyzer
    system.bus.attach_probe(probe)

    system.install_image(0, image)        # offline encryption (§2.1 step 6)
    report = system.run(list(trace))
    baseline = run_trace(
        list(trace), engine=None, image=image,
        cache_config=system.cache.config, mem_config=system.memory.config,
    )

    print(format_table(
        ["metric", "value"],
        [
            ["engine", system.engine.name],
            ["accesses simulated", report.accesses],
            ["cache miss rate", f"{report.miss_rate:.1%}"],
            ["cycles (plaintext baseline)", baseline.cycles],
            ["cycles (with engine)", report.cycles],
            ["performance overhead",
             format_percent(report.overhead_vs(baseline))],
            ["engine area", f"{system.engine.area().total:,} gates"],
        ],
        title="Simulation summary",
    ))

    # What did the wire expose?  Analyze the program-region reads (the
    # data region was never initialized, so its lines are zero-filled).
    observed = probe.observed_bytes("read")
    # Reconstruct the attacker's view of the program image (one entry per
    # address — re-fetches of an unmodified line repeat the same
    # ciphertext, which is redundancy, not structure).
    recon = probe.reconstruct_memory()
    code_view = b"".join(
        data for addr, data in sorted(recon.items()) if addr < len(image)
    )
    stats = analyze_ciphertext(code_view[:16384], block_size=8)
    print()
    print(format_table(
        ["bus observation", "value"],
        [
            ["bytes captured", probe.bytes_observed],
            ["plaintext visible?", image[:32] in observed],
            ["program-read entropy", f"{stats.entropy_bits_per_byte:.2f} "
                                     "bits/byte"],
            ["looks like random noise?", stats.looks_random],
        ],
        title="Attacker's bus probe",
    ))

    # The chip itself still reads its program perfectly.
    assert system.read_plaintext(0, 64) == image[:64]
    print("\nOn-chip view decrypts correctly; the bus shows only noise.")


if __name__ == "__main__":
    main()
