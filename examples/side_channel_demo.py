"""What encryption does NOT hide: the access-pattern side channel.

Runs the same two victims (a sequential code walk and a random-access
lookup) through the strongest engine in the package, then shows a passive
probe classifying the workload, counting its working set, and — for the
page-DMA engine — reading off the page access order outright.

The survey's threat model stops at content confidentiality; this demo marks
the boundary of what every engine in it can deliver.

Run:  python examples/side_channel_demo.py
"""

from repro.analysis import format_table
from repro.api import make_engine
from repro.attacks import BusProbe, classify_pattern, page_sequence, profile_probe
from repro.crypto import DRBG
from repro.sim import CacheConfig, MemoryConfig, SecureSystem
from repro.traces import Access, AccessKind, random_data, sequential_code

KEY = b"0123456789abcdef"
KEY24 = b"0123456789abcdef01234567"


def observe(trace, engine):
    system = SecureSystem(
        engine=engine,
        cache_config=CacheConfig(size=1024, line_size=32, associativity=2),
        mem_config=MemoryConfig(size=1 << 21),
    )
    probe = BusProbe()
    system.bus.attach_probe(probe)
    system.install_image(0, bytes(32 * 1024))
    for access in trace:
        system.step(access)
    return probe


def main() -> None:
    victims = {
        "straight-line code": sequential_code(2000, code_size=32 * 1024),
        "random table lookups": random_data(
            1500, DRBG(7), base=0, working_set=32 * 1024
        ),
    }
    rows = []
    for label, trace in victims.items():
        probe = observe(trace, make_engine("aegis", key=KEY))
        prof = profile_probe(probe)
        rows.append([
            label,
            classify_pattern(probe),
            prof.distinct_addresses,
            f"{prof.sequential_fraction:.0%}",
            f"{prof.write_fraction:.0%}",
        ])
    print(format_table(
        ["victim behaviour", "probe's verdict", "distinct lines seen",
         "sequential transitions", "write mix"],
        rows,
        title="Through AEGIS encryption, a passive probe still learns:",
    ))

    # -- the page-DMA engine broadcasts page order --------------------------
    engine = make_engine("vlsi", key=KEY24, page_size=1024, buffer_pages=2)
    system = SecureSystem(
        engine=engine,
        cache_config=CacheConfig(size=512, line_size=32, associativity=2),
        mem_config=MemoryConfig(size=1 << 21),
    )
    probe = BusProbe()
    system.bus.attach_probe(probe)
    system.install_image(0, bytes(8192))
    secret_page_order = [0, 3, 1, 6, 2]
    for page in secret_page_order:
        system.step(Access(AccessKind.LOAD, page * 1024))
    recovered = page_sequence(probe, page_size=1024)

    print()
    print(format_table(
        ["", "pages"],
        [["victim's secret access order", secret_page_order],
         ["probe's reconstruction", recovered]],
        title="VLSI page-DMA: the access pattern IS the bus traffic",
    ))
    assert recovered == secret_page_order
    print("\nEvery engine in the survey closes the content channel; none "
          "closes this one.")


if __name__ == "__main__":
    main()
