"""Figure 1 end-to-end: a software editor ships firmware to a secure chip.

The full survey §2.1 scenario:

1. the chip manufacturer provisions an RSA key pair (D_m on-chip);
2. the processor requests the session key K;
3-4. the editor fetches E_m and sends K encrypted under it;
5. the chip recovers K with D_m;
6. the chip deciphers the firmware and installs it in external RAM,
   re-enciphered under its own bus key —

then the firmware actually *executes* on the MCU model through the bus
decryptor, while a passive eavesdropper (network) and a bus probe (PCB)
record everything they can.

Run:  python examples/secure_software_distribution.py
"""

from repro.analysis import format_table
from repro.api import make_engine
from repro.core import run_distribution
from repro.isa import MCU, assemble, fibonacci_program
from repro.sim import MainMemory, MemoryConfig


def main() -> None:
    # The product: firmware computing Fibonacci numbers on the port.
    firmware = assemble(fibonacci_program(10), size=1024)

    # -- steps 1-6 over the insecure network ---------------------------
    memory = MainMemory(MemoryConfig(size=1 << 16))
    bus_engine = make_engine("ds5240", key=b"chip-bus-key-16b")
    processor, eve, session_key = run_distribution(
        firmware, seed=42, key_bits=512, engine=bus_engine, memory=memory,
    )

    print(format_table(
        ["check", "result"],
        [
            ["messages on the open network", len(eve.transcript)],
            ["bytes the eavesdropper captured", eve.total_bytes],
            ["eavesdropper saw session key K?", eve.saw(session_key)],
            ["eavesdropper saw the firmware?", eve.saw(firmware[:16])],
            ["firmware visible in external RAM?",
             firmware[:32] in memory.dump(0, 4096)],
        ],
        title="Distribution security (survey Figure 1)",
    ))

    # -- the installed product runs through the bus decryptor ----------
    # Model the chip-side decryptor as a byte-granular view over the
    # 64-bit engine: execute from a decrypted shadow for the MCU demo.
    plaintext = bytearray()
    for addr in range(0, 1024, 32):
        plaintext += bus_engine.decrypt_line(addr, memory.dump(addr, 32))
    mcu = MCU(bytearray(plaintext))
    mcu.run()

    print()
    print(format_table(
        ["execution", "value"],
        [
            ["port output (Fibonacci)", mcu.port_log],
            ["instructions retired", "yes" if mcu.halted else "no"],
        ],
        title="The protected firmware still runs",
    ))
    assert mcu.port_log == [0, 1, 1, 2, 3, 5, 8, 13, 21, 34]
    print("\nConfidential in transit, confidential at rest, and it runs.")


if __name__ == "__main__":
    main()
