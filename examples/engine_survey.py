"""The survey in one run: every engine on one workload, compared.

Prints the quantified version of the paper's §3 walkthrough — performance
overhead, silicon area, random-access granularity and the IBM adversary
class each engine's confidentiality withstands.

Run:  python examples/engine_survey.py
"""

from repro.analysis import (
    format_gates,
    format_percent,
    format_table,
    measure_overhead,
)
from repro.attacks import rate_engine
from repro.core import (
    AegisEngine,
    BestEngine,
    DS5002FPEngine,
    DS5240Engine,
    GeneralInstrumentEngine,
    GilmontEngine,
    StreamCipherEngine,
    VlsiDmaEngine,
    XomAesEngine,
)
from repro.sim import CacheConfig, MemoryConfig
from repro.traces import make_workload

KEY16 = b"0123456789abcdef"
KEY24 = b"0123456789abcdef01234567"
IMAGE_SIZE = 32 * 1024

ENGINES = [
    ("Best 1979 (Fig. 3)", lambda: BestEngine(KEY16), "block"),
    ("Dallas DS5002FP (Fig. 6)", lambda: DS5002FPEngine(KEY16), "byte"),
    ("Dallas DS5240 (Fig. 6)", lambda: DS5240Engine(KEY16), "block"),
    ("VLSI secure DMA (Fig. 4)",
     lambda: VlsiDmaEngine(KEY24, page_size=1024, buffer_pages=8), "page"),
    ("General Instrument (Fig. 5)",
     lambda: GeneralInstrumentEngine(KEY24, region_size=1024,
                                     authenticate=False), "region"),
    ("Gilmont 3DES + predictor", lambda: GilmontEngine(KEY24), "block"),
    ("XOM pipelined AES", lambda: XomAesEngine(KEY16), "block"),
    ("AEGIS AES-CBC per line", lambda: AegisEngine(KEY16), "line"),
    ("Stream CTR pad-ahead (Fig. 2a)",
     lambda: StreamCipherEngine(KEY16, line_size=32), "byte"),
]


def main() -> None:
    trace = [
        type(a)(a.kind, a.addr % IMAGE_SIZE, a.size)
        for a in make_workload("mixed", n=4000)
    ]
    cache = CacheConfig(size=4096, line_size=32, associativity=2)
    mem = MemoryConfig(size=1 << 21, latency=40)

    from repro.sim import estimate_run

    rows = []
    for label, factory, granularity in ENGINES:
        timing_engine = factory()
        timing_engine.functional = False

        result = measure_overhead(
            lambda e=timing_engine: e, trace, image=bytes(IMAGE_SIZE),
            cache_config=cache, mem_config=mem,
        )
        energy = estimate_run(result.secured, timing_engine)
        engine = factory()
        rating = rate_engine(engine.name)
        rows.append([
            label,
            format_percent(result.overhead),
            format_gates(engine.area().total),
            f"{energy.total_uj:.1f} uJ",
            granularity,
            rating.highest_class_withstood or "none",
            rating.notes[:40],
        ])

    print(format_table(
        ["engine", "overhead", "area", "energy", "granularity", "class",
         "notes"],
        rows,
        title="Hardware engines for bus encryption — the survey, measured",
    ))


if __name__ == "__main__":
    main()
