"""The survey in one run: every engine on one workload, compared.

Prints the quantified version of the paper's §3 walkthrough — performance
overhead, silicon area, energy, random-access granularity and the IBM
adversary class each engine's confidentiality withstands.

Every engine is built through the registry (``repro.api.make_engine``),
so this table stays in sync with ``python -m repro.cli list``.

Run:  python examples/engine_survey.py
"""

from repro.analysis import (
    format_gates,
    format_percent,
    format_table,
    measure_overhead,
)
from repro.api import engine_names, get_spec, make_engine
from repro.attacks import rate_engine
from repro.sim import CacheConfig, MemoryConfig, estimate_run
from repro.traces import make_workload

IMAGE_SIZE = 32 * 1024

#: Smallest independently decryptable unit per engine (survey §3).
GRANULARITY = {
    "best": "block",
    "ds5002fp": "byte",
    "ds5240": "block",
    "vlsi": "page",
    "gi": "region",
    "gilmont": "block",
    "xom": "block",
    "aegis": "line",
    "stream": "byte",
}


def main() -> None:
    trace = [
        type(a)(a.kind, a.addr % IMAGE_SIZE, a.size)
        for a in make_workload("mixed", n=4000)
    ]
    cache = CacheConfig(size=4096, line_size=32, associativity=2)
    mem = MemoryConfig(size=1 << 21, latency=40)

    rows = []
    for name in engine_names(survey_only=True):
        timing_engine = make_engine(name, functional=False)

        result = measure_overhead(
            lambda e=timing_engine: e, trace, image=bytes(IMAGE_SIZE),
            cache_config=cache, mem_config=mem,
        )
        energy = estimate_run(result.secured, timing_engine)
        engine = make_engine(name)
        rating = rate_engine(engine.name)
        rows.append([
            f"{name} ({get_spec(name).section})",
            format_percent(result.overhead),
            format_gates(engine.area().total),
            f"{energy.total_uj:.1f} uJ",
            GRANULARITY[name],
            rating.highest_class_withstood or "none",
            rating.notes[:40],
        ])

    print(format_table(
        ["engine", "overhead", "area", "energy", "granularity", "class",
         "notes"],
        rows,
        title="Hardware engines for bus encryption — the survey, measured",
    ))


if __name__ == "__main__":
    main()
