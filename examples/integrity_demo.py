"""§5's future work, built: integrity against instruction modification.

Walks the full escalation:
1. a confidentiality-only engine accepts modified instructions (silently
   decrypting them to garbage the CPU happily runs);
2. per-line MAC tags catch modification and spoofing;
3. but a recorded (line, tag) pair *replays* unless freshness state exists;
4. on-chip version counters close replay at SRAM cost;
5. a Merkle tree closes it with 16 bytes of on-chip state.

Run:  python examples/integrity_demo.py
"""

from repro.analysis import format_table
from repro.api import make_engine
from repro.core import MerkleTamperDetected, TamperDetected
from repro.core.engine import MemoryPort
from repro.sim import Bus, MainMemory, MemoryConfig

KEY = b"0123456789abcdef"
MAC = b"integrity-mac-key"
REGION = 4096


def port():
    return MemoryPort(MainMemory(MemoryConfig(size=1 << 17)), Bus())


def attack_outcomes(engine, p, tag_addr=None):
    """(modification detected?, replay detected?) for one engine."""
    engine.install_image(p.memory, 0, bytes(REGION))
    # -- modification ---------------------------------------------------
    flipped = p.memory.dump(64, 1)[0] ^ 0x80
    p.memory.load_image(64, bytes([flipped]))
    try:
        engine.fill_line(p, 64, 32)
        modification = False
    except (TamperDetected, MerkleTamperDetected):
        modification = True
    p.memory.load_image(64, bytes([flipped ^ 0x80]))   # restore

    # -- replay -----------------------------------------------------------
    engine.write_line(p, 0, b"SECRET-V1-------" * 2)
    stale_line = p.memory.dump(0, 32)
    stale_tag = p.memory.dump(tag_addr, 16) if tag_addr is not None else None
    engine.write_line(p, 0, b"SECRET-V2-------" * 2)
    p.memory.load_image(0, stale_line)
    if stale_tag is not None:
        p.memory.load_image(tag_addr, stale_tag)
    if hasattr(engine, "_node_cache"):
        engine._node_cache.clear()
    if hasattr(engine, "_tag_cache"):
        engine._tag_cache.clear()
    try:
        engine.fill_line(p, 0, 32)
        replay = False
    except (TamperDetected, MerkleTamperDetected):
        replay = True
    return modification, replay


def main() -> None:
    rows = []

    plain = make_engine("stream", key=KEY)
    p = port()
    plain.install_image(p.memory, 0, bytes(REGION))
    flipped = p.memory.dump(64, 1)[0] ^ 0x80
    p.memory.load_image(64, bytes([flipped]))
    line, _ = plain.fill_line(p, 64, 32)   # garbage, silently accepted
    rows.append(["confidentiality only", False, False, "0"])

    shield_v = make_engine(
        "integrity-stream", key=KEY, mac_key=MAC,
        tag_region_base=0x8000, versioned=True, tracked_lines=REGION // 32,
    )
    p = port()
    mod, rep = attack_outcomes(shield_v, p, tag_addr=shield_v._tag_addr(0, 32))
    rows.append(["MAC tags + on-chip versions", mod, rep,
                 f"{4 * REGION // 32}"])

    shield_u = make_engine(
        "integrity-stream", key=KEY, mac_key=MAC,
        tag_region_base=0x8000, versioned=False,
    )
    p = port()
    mod, rep = attack_outcomes(shield_u, p, tag_addr=shield_u._tag_addr(0, 32))
    rows.append(["MAC tags, no freshness", mod, rep, "0"])

    merkle = make_engine(
        "merkle-stream", key=KEY, mac_key=MAC,
        region_base=0, region_size=REGION, tree_base=0x8000,
    )
    p = port()
    mod, rep = attack_outcomes(
        merkle, p, tag_addr=merkle._node_addr(0, 0)
    )
    rows.append(["Merkle tree (root on chip)", mod, rep, "16"])

    print(format_table(
        ["design", "modification detected", "replay detected",
         "on-chip state (B)"],
        rows,
        title='§5: "to thwart attacks based on the modification of the '
              'fetched instructions"',
    ))
    print("\nConfidentiality alone runs whatever the attacker injects; "
          "tags stop forgery;\nfreshness state — counters or a tree root — "
          "stops time travel.")


if __name__ == "__main__":
    main()
