"""Break the DS5002FP: Kuhn's Cipher Instruction Search, step by step.

Re-stages the famous attack the survey recounts in §2.3: a class-II
adversary with board-level access (memory injection, reset control, bus and
port observation) recovers the entire encrypted firmware of an 8-bit-block
bus-encryption microcontroller without ever learning the key — then the
same experiment is shown collapsing against the DS5240's 64-bit blocks.

Run:  python examples/kuhn_attack_demo.py
"""

from repro.analysis import format_table
from repro.attacks import (
    DallasBoard,
    KuhnAttack,
    block_diffusion_probe,
    brute_force_tries,
)
from repro.crypto import SmallBlockCipher, TweakableFeistel
from repro.isa import assemble, secret_table_program


def main() -> None:
    # The victim: firmware with an embedded 64-byte secret table, factory
    # programmed into external memory under a per-address byte cipher.
    firmware = assemble(secret_table_program(seed=1337, table_len=64),
                        size=1024)
    cipher = SmallBlockCipher(b"factory-secret-never-leaves-chip")
    board = DallasBoard(cipher, firmware, memory_size=1024)

    print("Victim programmed. External memory (first 32 bytes, hex):")
    print(" ", board.read_raw(0, 32).hex())
    print("Actual firmware    (first 32 bytes, hex):")
    print(" ", firmware[:32].hex())
    print()

    attack = KuhnAttack(board, verbose=True)
    report = attack.run()

    exact = sum(a == b for a, b in zip(report.plaintext, firmware))
    print()
    print(format_table(
        ["result", "value"],
        [
            ["memory dumped", f"{len(report.plaintext)} bytes"],
            ["bytes exactly recovered", f"{exact} / {len(firmware)}"],
            ["ambiguous cells", len(report.ambiguous_cells)],
            ["probe runs (resets)", report.probe_runs],
            ["instructions single-stepped", report.steps_executed],
            ["secret table recovered?",
             report.plaintext[0x100:0x140] == firmware[0x100:0x140]],
        ],
        title="Cipher Instruction Search vs DS5002FP (survey §2.3)",
    ))
    assert report.plaintext == firmware

    # -- and why the DS5240 ended this ----------------------------------
    ds5240 = TweakableFeistel(b"factory-secret-never-leaves-chip",
                              block_bits=64)
    print()
    print(format_table(
        ["device", "block", "probes to tabulate one address",
         "single-bit diffusion"],
        [
            ["DS5002FP", "8-bit", f"{brute_force_tries(8):,}",
             "n/a (1-byte blocks)"],
            ["DS5240", "64-bit", f"{brute_force_tries(64):.2e}",
             f"{block_diffusion_probe(ds5240):.2f}"],
        ],
        title='"the 8-bit based ciphering passes to 64-bit based ciphering"',
    ))
    print("\nAt 2^64 probes per address, the search that took "
          f"{report.probe_runs} runs above would outlive the attacker.")


if __name__ == "__main__":
    main()
