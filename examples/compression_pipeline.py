"""Figure 8 walkthrough: compression before encryption on the bus path.

Shows the three claims of the survey's §4 on real data:
1. code compresses, ciphertext does not (the ordering rule);
2. compression buys memory density (CodePack's ~35%);
3. the performance sign flips with the memory type (the "+/- 10%").

Run:  python examples/compression_pipeline.py
"""

from repro.analysis import format_percent, format_table, measure_overhead
from repro.api import make_engine
from repro.compression import CodePack, lz77_compress, shannon_entropy
from repro.crypto import AES, CTR
from repro.sim import CacheConfig, MemoryConfig
from repro.traces import sequential_code, synthetic_code_image

KEY = b"0123456789abcdef"
IMAGE_SIZE = 32 * 1024


def main() -> None:
    image = synthetic_code_image(size=IMAGE_SIZE)
    ciphertext = CTR(AES(KEY), nonce=bytes(12)).encrypt(image)

    print(format_table(
        ["pipeline order", "input entropy", "compressed size", "ratio"],
        [
            ["compress THEN encrypt",
             f"{shannon_entropy(image):.2f} b/B",
             len(lz77_compress(image)),
             f"{len(lz77_compress(image)) / len(image):.2f}"],
            ["encrypt THEN compress",
             f"{shannon_entropy(ciphertext):.2f} b/B",
             len(lz77_compress(ciphertext)),
             f"{len(lz77_compress(ciphertext)) / len(ciphertext):.2f}"],
        ],
        title='1. "The compression has to be done before ciphering"',
    ))

    compressed = CodePack(block_size=32).compress_image(image)
    print()
    print(format_table(
        ["metric", "value"],
        [
            ["original image", f"{len(image):,} bytes"],
            ["packed (incl. LAT + dictionaries)",
             f"{compressed.compressed_size:,} bytes"],
            ["memory density gain",
             format_percent(compressed.density_gain)],
        ],
        title="2. Memory density (survey: CodePack ~= 35%)",
    ))

    trace = sequential_code(4000, code_size=IMAGE_SIZE)
    cache = CacheConfig(size=1024, line_size=32, associativity=2)
    rows = []
    for label, latency, width, cpb in (
        ("fast wide bus", 10, 8, 1),
        ("moderate bus", 40, 4, 1),
        ("slow narrow bus", 40, 2, 2),
    ):
        result = measure_overhead(
            lambda: make_engine("compress", key=KEY, functional=False),
            trace, image=image, cache_config=cache,
            mem_config=MemoryConfig(size=1 << 20, latency=latency,
                                    bus_width=width, cycles_per_beat=cpb),
        )
        rows.append([label, format_percent(result.overhead)])
    print()
    print(format_table(
        ["memory type", "compress+encrypt overhead"],
        rows,
        title='3. "+/- 10% (depends on the type of memory used)"',
    ))


if __name__ == "__main__":
    main()
